#include "rtl/compiled_engine.h"

#include <chrono>
#include <stdexcept>
#include <unordered_map>

namespace ctrtl::rtl {

CompiledEngine::CompiledEngine(kernel::Scheduler& scheduler, Controller& controller,
                               std::span<const CompiledTransfer> transfers,
                               std::span<const std::unique_ptr<Register>> registers,
                               std::span<const std::unique_ptr<Module>> modules,
                               std::span<RtSignal* const> touched_inputs)
    : scheduler_(scheduler),
      controller_(controller),
      cs_(&controller.cs()),
      ph_(&controller.ph()) {
  const unsigned cs_max = controller.cs_max();
  wheel_cycles_ = static_cast<std::uint64_t>(cs_max) * kPhasesPerStep;
  plan_.resize(wheel_cycles_ + 2);  // [0] unused; [wheel_cycles_+1] trailing

  for (const std::unique_ptr<Module>& module : modules) {
    ModuleSlot slot;
    slot.module = module.get();
    for (unsigned i = 0; i < module->config().num_inputs; ++i) {
      slot.inputs.push_back(&module->input(i));
    }
    slot.op = module->config().has_op_port ? &module->op_port() : nullptr;
    slot.out = &module->out();
    slot.operand_scratch.resize(module->config().num_inputs);
    module_slots_.push_back(std::move(slot));
  }
  for (const std::unique_ptr<Register>& reg : registers) {
    if (reg->initial().has_value()) {
      preloaded_registers_.push_back(
          static_cast<std::uint32_t>(register_slots_.size()));
    }
    register_slots_.push_back(
        RegisterSlot{reg.get(), &reg->in(), &reg->out(), RtValue::disc(), false});
  }

  // --- transfer lowering: one contribution (driver) per transfer, fire at
  // the transfer's delta ordinal, release at the next one -------------------
  std::unordered_map<const RtSignal*, std::uint32_t> slot_of;
  for (const CompiledTransfer& transfer : transfers) {
    const auto [it, inserted] =
        slot_of.try_emplace(transfer.sink, static_cast<std::uint32_t>(slots_.size()));
    if (inserted) {
      SinkSlot slot;
      slot.signal = transfer.sink;
      // Every resolved signal the model can hand out as a sink (bus,
      // register input, module input, op port) is conflict-monitored by
      // RtModel; unresolved sinks (e.g. a constant) are not.
      slot.monitored = transfer.sink->resolved();
      slots_.push_back(std::move(slot));
    }
    SinkSlot& slot = slots_[it->second];
    const auto driver = static_cast<std::uint32_t>(slot.contributions.size());
    slot.contributions.push_back(RtValue::disc());
    const std::uint64_t fire_ordinal =
        (static_cast<std::uint64_t>(transfer.step) - 1) * kPhasesPerStep +
        static_cast<std::uint64_t>(phase_index(transfer.phase)) + 1;
    plan_[fire_ordinal].fires.push_back(
        FireAction{it->second, driver, transfer.source});
    plan_[fire_ordinal + 1].releases.push_back(ReleaseAction{it->second, driver});
  }
  for (const SinkSlot& slot : slots_) {
    // The same situation the event path rejects in Signal::add_driver.
    if (!slot.signal->resolved() &&
        slot.signal->driver_count() + slot.contributions.size() > 1) {
      throw std::logic_error("signal '" + slot.signal->name() +
                             "': multiple drivers on an unresolved signal");
    }
  }

  // --- per-cycle execution metadata ----------------------------------------
  for (std::uint64_t d = 1; d <= wheel_cycles_ + 1; ++d) {
    const auto [step, phase] = Controller::locate(d);
    plan_[d].step = step;
    plan_[d].phase = phase;
    if (d <= wheel_cycles_) {
      plan_[d].eval_modules = phase == Phase::kCm && !module_slots_.empty();
      plan_[d].latch_registers = phase == Phase::kCr && !register_slots_.empty();
      // The controller drives CS and PH when cr opens the next step, nothing
      // at the final cr, and PH alone everywhere else.
      plan_[d].controller_transactions =
          phase == kPhaseHigh ? (step < cs_max ? 2u : 0u) : 1u;
    }
  }

  // --- update lists: the event kernel's pending order, statically derived --
  // Cycle 1 applies the pre-run drives: externally set inputs (touch order),
  // then the controller's initialization CS/PH assignments, then register
  // preloads (elaboration order).
  {
    std::vector<UpdateEntry>& updates = plan_[1].updates;
    for (std::uint32_t i = 0; i < touched_inputs.size(); ++i) {
      updates.push_back(UpdateEntry{UpdateEntry::Kind::kInput, i});
    }
    if (cs_max > 0) {
      updates.push_back(UpdateEntry{UpdateEntry::Kind::kCs, 0});
      updates.push_back(UpdateEntry{UpdateEntry::Kind::kPh, 0});
    }
    for (const std::uint32_t reg : preloaded_registers_) {
      updates.push_back(UpdateEntry{UpdateEntry::Kind::kRegisterOut, reg});
    }
  }
  // Every later cycle updates exactly what the previous cycle's execution
  // phase drove, in the order the event kernel's processes would have
  // driven it: module outputs (after cm), fire sinks (never-resumed TRANS
  // processes run before re-appended waiters), register outputs (after cr),
  // release sinks, then the controller's CS/PH. A sink hit by several
  // actions in one cycle is pending once, at its first drive.
  std::vector<std::uint64_t> sink_stamp(slots_.size(), 0);
  for (std::uint64_t d = 2; d <= wheel_cycles_ + 1; ++d) {
    const CyclePlan& prev = plan_[d - 1];
    std::vector<UpdateEntry>& updates = plan_[d].updates;
    const auto add_sink = [&](std::uint32_t slot) {
      if (sink_stamp[slot] != d) {
        sink_stamp[slot] = d;
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kSink, slot});
      }
    };
    if (prev.eval_modules) {
      for (std::uint32_t m = 0; m < module_slots_.size(); ++m) {
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kModuleOut, m});
      }
    }
    for (const FireAction& fire : prev.fires) {
      add_sink(fire.slot);
    }
    if (prev.latch_registers) {
      for (std::uint32_t r = 0; r < register_slots_.size(); ++r) {
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kRegisterOut, r});
      }
    }
    for (const ReleaseAction& release : prev.releases) {
      add_sink(release.slot);
    }
    if (prev.phase == kPhaseHigh) {
      if (prev.step < cs_max) {
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kCs, 0});
        updates.push_back(UpdateEntry{UpdateEntry::Kind::kPh, 0});
      }
    } else {
      updates.push_back(UpdateEntry{UpdateEntry::Kind::kPh, 0});
    }
  }
  for (const UpdateEntry& entry : plan_[wheel_cycles_ + 1].updates) {
    if (entry.kind == UpdateEntry::Kind::kSink ||
        entry.kind == UpdateEntry::Kind::kInput) {
      trailing_has_static_updates_ = true;
      break;
    }
  }

  init_transactions_ = (cs_max > 0 ? 2u : 0u) + preloaded_registers_.size();
}

void CompiledEngine::write_contribution(SinkSlot& slot, std::uint32_t driver,
                                        const RtValue& value) {
  RtValue& contribution = slot.contributions[driver];
  if (!contribution.is_disc()) {
    --slot.non_disc;
  }
  if (contribution.is_illegal()) {
    --slot.illegal;
  }
  contribution = value;
  if (!value.is_disc()) {
    ++slot.non_disc;
    slot.last_value_driver = driver;
  }
  if (value.is_illegal()) {
    ++slot.illegal;
  }
}

RtValue CompiledEngine::resolve_slot(const SinkSlot& slot) const {
  // resolve_rt over the contribution array, from the counters: any ILLEGAL
  // or two non-DISC contributions -> ILLEGAL; none -> DISC; one -> it.
  if (slot.illegal > 0 || slot.non_disc > 1) {
    return RtValue::illegal();
  }
  if (slot.non_disc == 0) {
    return RtValue::disc();
  }
  const RtValue& cached = slot.contributions[slot.last_value_driver];
  if (!cached.is_disc()) {
    return cached;
  }
  for (const RtValue& contribution : slot.contributions) {
    if (!contribution.is_disc()) {
      return contribution;
    }
  }
  return RtValue::disc();  // unreachable: non_disc == 1
}

bool CompiledEngine::trailing_cycle_needed() const {
  if (trailing_has_static_updates_) {
    return true;
  }
  for (const RegisterSlot& reg : register_slots_) {
    if (reg.dirty) {
      return true;
    }
  }
  return false;
}

void CompiledEngine::execute_cycle(std::uint64_t ordinal, RunResult& result,
                                   bool observers) {
  kernel::KernelStats& stats = scheduler_.external_stats();
  const CyclePlan& plan = plan_[ordinal];
  const kernel::SimTime time{0, ordinal};
  ++stats.delta_cycles;

  // --- update phase --------------------------------------------------------
  for (const UpdateEntry& entry : plan.updates) {
    switch (entry.kind) {
      case UpdateEntry::Kind::kInput:
        // The value itself was published at set_input time (before the
        // stats window opened), matching the event kernel where the input's
        // transaction is applied during initialization: an update with no
        // event on the first cycle.
        ++stats.updates;
        break;
      case UpdateEntry::Kind::kCs:
        ++stats.updates;
        if (cs_->set_effective(plan.step)) {
          ++stats.events;
          if (observers) {
            scheduler_.dispatch_event_observers(*cs_, time);
          }
        }
        break;
      case UpdateEntry::Kind::kPh:
        ++stats.updates;
        if (ph_->set_effective(plan.phase)) {
          ++stats.events;
          if (observers) {
            scheduler_.dispatch_event_observers(*ph_, time);
          }
        }
        break;
      case UpdateEntry::Kind::kSink: {
        SinkSlot& slot = slots_[entry.index];
        ++stats.updates;
        RtValue value = resolve_slot(slot);
        const bool illegal = value.is_illegal();
        if (slot.signal->set_effective(std::move(value))) {
          ++stats.events;
          if (illegal && slot.monitored) {
            result.conflicts.push_back(
                Conflict{slot.signal->name(), plan.step, plan.phase});
          }
          if (observers) {
            scheduler_.dispatch_event_observers(*slot.signal, time);
          }
        }
        break;
      }
      case UpdateEntry::Kind::kModuleOut: {
        ModuleSlot& slot = module_slots_[entry.index];
        ++stats.updates;
        if (slot.out->set_effective(slot.pending)) {
          ++stats.events;
          if (observers) {
            scheduler_.dispatch_event_observers(*slot.out, time);
          }
        }
        break;
      }
      case UpdateEntry::Kind::kRegisterOut: {
        RegisterSlot& slot = register_slots_[entry.index];
        if (!slot.dirty) {
          break;  // no latch this step: the signal was never pending
        }
        slot.dirty = false;
        ++stats.updates;
        if (slot.out->set_effective(slot.pending)) {
          ++stats.events;
          if (observers) {
            scheduler_.dispatch_event_observers(*slot.out, time);
          }
        }
        break;
      }
    }
  }

  // --- execution phase (the trailing cycle only applies updates) -----------
  if (ordinal > wheel_cycles_) {
    return;
  }
  for (const FireAction& fire : plan.fires) {
    write_contribution(slots_[fire.slot], fire.driver, fire.source->read());
    ++stats.transactions;
  }
  if (plan.eval_modules) {
    for (ModuleSlot& slot : module_slots_) {
      for (std::size_t i = 0; i < slot.inputs.size(); ++i) {
        slot.operand_scratch[i] = slot.inputs[i]->read();
      }
      const RtValue op = slot.op != nullptr ? slot.op->read() : RtValue::disc();
      slot.pending = slot.module->advance(slot.operand_scratch, op);
      ++stats.transactions;
    }
  }
  if (plan.latch_registers) {
    for (RegisterSlot& slot : register_slots_) {
      const RtValue& value = slot.in->read();
      if (!value.is_disc()) {
        slot.pending = value;
        slot.dirty = true;
        ++stats.transactions;
      }
    }
  }
  for (const ReleaseAction& release : plan.releases) {
    write_contribution(slots_[release.slot], release.driver, RtValue::disc());
    ++stats.transactions;
  }
  stats.transactions += plan.controller_transactions;
}

RunResult CompiledEngine::run(std::uint64_t max_cycles,
                              std::uint64_t max_delta_cycles) {
  const auto start = std::chrono::steady_clock::now();
  kernel::KernelStats& stats = scheduler_.external_stats();
  const kernel::KernelStats before = stats;
  RunResult result;
  if (!initialized_) {
    // The event kernel's initialization phase: the controller's first CS/PH
    // assignments and the register preloads are transactions scheduled
    // before the first delta cycle.
    initialized_ = true;
    stats.transactions += init_transactions_;
    for (const std::uint32_t reg : preloaded_registers_) {
      register_slots_[reg].pending = *register_slots_[reg].reg->initial();
      register_slots_[reg].dirty = true;
    }
  }
  const bool observers = scheduler_.has_event_observers();
  const std::uint64_t last = wheel_cycles_ + 1;
  std::uint64_t executed = 0;
  while (executed < max_cycles && cursor_ <= last) {
    if (cursor_ == last && !trailing_cycle_needed()) {
      break;  // quiescent: the final cr latched nothing and released nothing
    }
    // Watchdog: cursor_ - 1 delta cycles have run in total (matching the
    // event scheduler's now().delta); trip instead of executing ordinal
    // cursor_ once that count reaches the bound. Checked after the
    // quiescence break (a finished model never trips) and inside the
    // max_cycles bound (the silent cap wins when the two coincide), exactly
    // like the event path.
    if (cursor_ - 1 >= max_delta_cycles) {
      result.report.status = RunStatus::kWatchdogTripped;
      result.report.diagnostics.push_back(
          watchdog_diagnostic(max_delta_cycles, cursor_));
      break;
    }
    execute_cycle(cursor_, result, observers);
    ++cursor_;
    ++executed;
  }
  result.cycles = executed;
  stats.wall_time_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  result.stats = stats - before;
  return result;
}

CompiledEngine::TableStats CompiledEngine::table_stats() const {
  TableStats stats;
  stats.cycles = plan_.size() - 1;
  stats.resolved_sinks = slots_.size();
  for (const CyclePlan& plan : plan_) {
    stats.fire_actions += plan.fires.size();
    stats.release_actions += plan.releases.size();
    stats.update_entries += plan.updates.size();
  }
  return stats;
}

}  // namespace ctrtl::rtl
