#include "rtl/module.h"

#include <stdexcept>

namespace ctrtl::rtl {

namespace {

RtValue resolve_adapter(std::span<const RtValue> contributions) {
  return resolve_rt(contributions);
}

}  // namespace

Module::Module(kernel::Scheduler& scheduler, Controller& controller,
               std::string name, Config config)
    : controller_(controller), name_(std::move(name)), config_(config) {
  inputs_.reserve(config_.num_inputs);
  for (unsigned i = 0; i < config_.num_inputs; ++i) {
    inputs_.push_back(&scheduler.make_signal<RtValue>(
        name_ + ".in" + std::to_string(i + 1), RtValue::disc(), resolve_adapter));
  }
  if (config_.has_op_port) {
    op_ = &scheduler.make_signal<RtValue>(name_ + ".op", RtValue::disc(),
                                          resolve_adapter);
  }
  out_ = &scheduler.make_signal<RtValue>(name_ + ".out", RtValue::disc());
  out_driver_ = out_->add_driver(RtValue::disc());
  pipeline_.assign(config_.latency, RtValue::disc());
}

kernel::Signal<RtValue>& Module::input(std::size_t index) {
  if (index >= inputs_.size()) {
    throw std::out_of_range("module '" + name_ + "': no input port " +
                            std::to_string(index));
  }
  return *inputs_[index];
}

kernel::Signal<RtValue>& Module::op_port() {
  if (op_ == nullptr) {
    throw std::logic_error("module '" + name_ + "' has no operation port");
  }
  return *op_;
}

void Module::start(kernel::Scheduler& scheduler) {
  if (started_) {
    return;
  }
  started_ = true;
  scheduler.spawn(name_, run());
}

unsigned Module::arity_for(std::int64_t /*op*/) const {
  return config_.num_inputs;
}

RtValue Module::evaluate(std::span<const RtValue> operands, const RtValue& op) {
  for (const RtValue& operand : operands) {
    if (operand.is_illegal()) {
      return RtValue::illegal();
    }
  }
  std::int64_t op_payload = 0;
  unsigned arity = config_.num_inputs;
  if (config_.has_op_port) {
    if (op.is_illegal()) {
      return RtValue::illegal();
    }
    if (op.is_disc()) {
      // No operation scheduled this step: idle only if no operand arrived.
      for (const RtValue& operand : operands) {
        if (!operand.is_disc()) {
          return RtValue::illegal();
        }
      }
      return RtValue::disc();
    }
    op_payload = op.payload();
    arity = arity_for(op_payload);
  }

  unsigned present = 0;
  for (unsigned i = 0; i < arity && i < operands.size(); ++i) {
    if (operands[i].has_value()) {
      ++present;
    }
  }
  if (present == 0 && !config_.has_op_port) {
    return RtValue::disc();  // paper's ADD: both operands DISC -> DISC
  }
  if (present != arity) {
    return RtValue::illegal();  // mixed DISC/value operands
  }

  scratch_payloads_.clear();
  for (unsigned i = 0; i < arity && i < operands.size(); ++i) {
    scratch_payloads_.push_back(operands[i].payload());
  }
  return RtValue::of(compute(std::span<const std::int64_t>(scratch_payloads_),
                             op_payload));
}

kernel::Process Module::run() {
  // Paper source (pipelined ADD, latency 1):
  //   process
  //     variable M: Integer := DISC;
  //   begin
  //     wait until PH=cM;
  //     M_out <= M;
  //     if M /= ILLEGAL then
  //       if    M_in1=DISC and M_in2=DISC   then M := DISC;
  //       elsif M_in1 /= DISC and M_in2 /= DISC then M := M_in1 + M_in2;
  //       else  M := ILLEGAL;
  //       end if;
  //     end if;
  //   end process;
  auto& ph = controller_.ph();
  std::vector<RtValue> operands(inputs_.size());
  const std::span<kernel::SignalBase* const> sensitivity =
      controller_.ph_sensitivity();
  for (;;) {
    co_await kernel::wait_until(sensitivity,
                                [&] { return ph.read() == Phase::kCm; });
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      operands[i] = inputs_[i]->read();
    }
    const RtValue op = op_ != nullptr ? op_->read() : RtValue::disc();
    out_->drive(out_driver_, advance(operands, op));
  }
}

RtValue Module::advance(std::span<const RtValue> operands, const RtValue& op) {
  if (config_.latency == 0) {
    return evaluate(operands, op);
  }
  const RtValue out = pipeline_.back();
  // The paper's `if M /= ILLEGAL` guard: once poisoned, the evaluation
  // stage only ever produces ILLEGAL again. In-flight pipeline stages
  // still drain so a multi-stage unit emits its pending valid results
  // before the ILLEGAL reaches the output (for latency 1 this reduces to
  // the paper's behaviour exactly).
  const RtValue next = poisoned_ ? RtValue::illegal() : evaluate(operands, op);
  for (std::size_t i = pipeline_.size(); i-- > 1;) {
    pipeline_[i] = pipeline_[i - 1];
  }
  pipeline_[0] = next;
  if (next.is_illegal()) {
    poisoned_ = true;
  }
  return out;
}

}  // namespace ctrtl::rtl
