#pragma once

#include <string>

#include "kernel/scheduler.h"
#include "rtl/controller.h"
#include "rtl/phase.h"
#include "rtl/value.h"

namespace ctrtl::rtl {

/// A bus or functional-unit input port: a resolved RtValue signal combined
/// with the paper's resolution function.
using RtSignal = kernel::Signal<RtValue>;

/// The paper's TRANS entity (section 2.4): activated at phase `P` of
/// control step `S` it drives the sink with the source value; at the
/// succeeding phase it drives DISC, releasing the sink.
///
///   entity TRANS is
///     generic (S: Natural; P: Phase);
///     port (CS: in Natural; PH: in Phase; InS: in Integer;
///           OutS: out Integer := DISC);
///   end TRANS;
class TransferProcess {
 public:
  TransferProcess(kernel::Scheduler& scheduler, Controller& controller,
                  unsigned step, Phase phase, RtSignal& source, RtSignal& sink,
                  std::string name);

  TransferProcess(const TransferProcess&) = delete;
  TransferProcess& operator=(const TransferProcess&) = delete;

  [[nodiscard]] unsigned step() const { return step_; }
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const RtSignal& source() const { return source_; }
  [[nodiscard]] const RtSignal& sink() const { return sink_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  kernel::Process run();

  Controller& controller_;
  unsigned step_;
  Phase phase_;
  RtSignal& source_;
  RtSignal& sink_;
  kernel::DriverId sink_driver_;
  std::string name_;
};

}  // namespace ctrtl::rtl
