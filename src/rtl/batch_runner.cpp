#include "rtl/batch_runner.h"

#include <algorithm>
#include <stdexcept>

#include "rtl/lane_engine.h"
#include "transfer/build.h"
#include "transfer/schedule.h"

namespace ctrtl::rtl {

InstanceResult run_instance(RtModel& model, std::uint64_t max_cycles) {
  InstanceResult result;
  RunResult run = model.run(max_cycles);
  result.cycles = run.cycles;
  result.stats = run.stats;
  result.conflicts = std::move(run.conflicts);
  result.registers.reserve(model.registers().size());
  for (const auto& reg : model.registers()) {
    result.registers.emplace_back(reg->name(), reg->value());
  }
  return result;
}

BatchRunner::BatchRunner(ModelFactory factory, BatchRunOptions options)
    : factory_(std::move(factory)),
      options_(options),
      engine_(kernel::BatchOptions{options.workers}) {
  if (!factory_) {
    throw std::invalid_argument("BatchRunner requires a model factory");
  }
  if (options_.engine == BatchEngineKind::kCompiledLanes) {
    throw std::invalid_argument(
        "BatchRunner: the lane engine needs one shared CompiledDesign — "
        "construct from CompiledDesign::compile, not a model factory");
  }
}

BatchRunner::BatchRunner(std::shared_ptr<const transfer::CompiledDesign> design,
                         BatchRunOptions options, BatchInputProvider inputs)
    : options_(options),
      design_(std::move(design)),
      inputs_(std::move(inputs)),
      engine_(kernel::BatchOptions{options.workers}) {
  if (!design_) {
    throw std::invalid_argument("BatchRunner requires a compiled design");
  }
  // The per-instance reference path for this design: elaborate from the
  // shared schedule (no per-instance re-lowering) and apply the instance's
  // inputs. Used by run_one and by engine == kPerInstance.
  factory_ = [this](std::size_t instance) {
    std::unique_ptr<RtModel> model =
        transfer::build_model(*design_, options_.mode);
    if (inputs_) {
      for (const auto& [name, value] : inputs_(instance)) {
        model->set_input(name, value);
      }
    }
    return model;
  };
  if (options_.engine == BatchEngineKind::kCompiledLanes) {
    lane_engine_ = std::make_unique<LaneEngine>(design_);
  }
}

BatchRunner::~BatchRunner() = default;

InstanceResult BatchRunner::run_one(std::size_t instance) const {
  const std::unique_ptr<RtModel> model = factory_(instance);
  if (!model) {
    throw std::invalid_argument("model factory returned null for instance " +
                                std::to_string(instance));
  }
  return run_instance(*model, options_.max_cycles);
}

BatchRunResult BatchRunner::run(std::size_t count) {
  BatchRunResult result;
  if (options_.engine == BatchEngineKind::kCompiledLanes) {
    const std::size_t shard = std::max<std::size_t>(1, options_.lane_block);
    const std::size_t jobs = (count + shard - 1) / shard;
    std::vector<std::vector<InstanceResult>> blocks =
        engine_.map<std::vector<InstanceResult>>(jobs, [&](std::size_t job) {
          const std::size_t first = job * shard;
          return lane_engine_->run_block(first, std::min(shard, count - first),
                                         inputs_, options_.max_cycles);
        });
    result.instances.reserve(count);
    for (std::vector<InstanceResult>& block_results : blocks) {
      for (InstanceResult& instance : block_results) {
        result.instances.push_back(std::move(instance));
      }
    }
  } else {
    result.instances = engine_.map<InstanceResult>(
        count, [this](std::size_t instance) { return run_one(instance); });
  }
  result.wall_time_ns = engine_.last_dispatch().wall_time_ns;
  result.workers = engine_.worker_count();
  for (const InstanceResult& instance : result.instances) {
    result.total = result.total + instance.stats;
  }
  return result;
}

}  // namespace ctrtl::rtl
