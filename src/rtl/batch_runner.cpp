#include "rtl/batch_runner.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "rtl/lane_engine.h"
#include "transfer/build.h"
#include "transfer/schedule.h"

namespace ctrtl::rtl {

namespace {

common::Diagnostic error_diagnostic(std::string message) {
  common::Diagnostic diag;
  diag.severity = common::Severity::kError;
  diag.message = std::move(message);
  return diag;
}

/// The result of a work unit skipped by the cancellation poll: never ran,
/// nothing to snapshot.
InstanceResult cancelled_instance() {
  InstanceResult result;
  result.report.status = RunStatus::kCancelled;
  return result;
}

}  // namespace

InstanceResult run_instance(RtModel& model, const RunOptions& options) {
  InstanceResult result;
  try {
    RunResult run = model.run(options);
    result.cycles = run.cycles;
    result.stats = run.stats;
    result.conflicts = std::move(run.conflicts);
    result.report = std::move(run.report);
  } catch (const std::exception& error) {
    // The simulation threw (a process exception, not a watchdog trip —
    // those are already folded into the report by RtModel::run). The model
    // object is still alive, so the register snapshot below is the valid
    // partial result at the failure point.
    result.report.status = RunStatus::kError;
    result.report.diagnostics.push_back(error_diagnostic(error.what()));
  }
  result.registers.reserve(model.registers().size());
  for (const auto& reg : model.registers()) {
    result.registers.emplace_back(reg->name(), reg->value());
  }
  return result;
}

BatchRunner::BatchRunner(ModelFactory factory, BatchRunOptions options)
    : factory_(std::move(factory)),
      options_(options),
      engine_(kernel::BatchOptions{options.workers}) {
  if (!factory_) {
    throw std::invalid_argument("BatchRunner requires a model factory");
  }
  if (options_.engine == BatchEngineKind::kCompiledLanes) {
    throw std::invalid_argument(
        "BatchRunner: the lane engine needs one shared CompiledDesign — "
        "construct from CompiledDesign::compile, not a model factory");
  }
}

BatchRunner::BatchRunner(std::shared_ptr<const transfer::CompiledDesign> design,
                         BatchRunOptions options, BatchInputProvider inputs)
    : options_(options),
      design_(std::move(design)),
      inputs_(std::move(inputs)),
      engine_(kernel::BatchOptions{options.workers}) {
  if (!design_) {
    throw std::invalid_argument("BatchRunner requires a compiled design");
  }
  // The per-instance reference path for this design: elaborate from the
  // shared schedule (no per-instance re-lowering) and apply the instance's
  // inputs. Used by run_one and by engine == kPerInstance.
  factory_ = [this](std::size_t instance) {
    std::unique_ptr<RtModel> model =
        transfer::build_model(*design_, options_.mode);
    if (inputs_) {
      for (const auto& [name, value] : inputs_(instance)) {
        model->set_input(name, value);
      }
    }
    return model;
  };
  if (options_.engine == BatchEngineKind::kCompiledLanes) {
    lane_engine_ = std::make_unique<LaneEngine>(design_);
  }
}

BatchRunner::~BatchRunner() = default;

InstanceResult BatchRunner::run_one(std::size_t instance) const {
  std::unique_ptr<RtModel> model;
  try {
    model = factory_(instance);
  } catch (const std::exception& error) {
    // A throwing factory (or input provider inside the design-based
    // factory) is an instance-level failure: isolate it so the rest of the
    // batch completes. There is no model, so there is nothing to snapshot.
    InstanceResult result;
    result.report.status = RunStatus::kError;
    result.report.diagnostics.push_back(error_diagnostic(error.what()));
    return result;
  }
  if (!model) {
    // Returning null is caller misuse of the factory contract, not an
    // instance failure — keep throwing.
    throw std::invalid_argument("model factory returned null for instance " +
                                std::to_string(instance));
  }
  return run_instance(
      *model, RunOptions{.max_cycles = options_.max_cycles,
                         .max_delta_cycles = options_.max_delta_cycles});
}

BatchRunResult BatchRunner::run(std::size_t count) {
  return run(count, nullptr);
}

BatchRunResult BatchRunner::run(std::size_t count, const BatchResultSink& sink) {
  BatchRunResult result;
  // Serializes sink invocations across worker threads: the sink sees one
  // completed work unit at a time, in completion order.
  std::mutex sink_mutex;
  const auto emit = [&](std::size_t first,
                        std::span<const InstanceResult> block) {
    if (sink) {
      const std::scoped_lock lock(sink_mutex);
      sink(first, block);
    }
  };
  if (options_.engine == BatchEngineKind::kCompiledLanes) {
    const std::size_t shard = std::max<std::size_t>(1, options_.lane_block);
    const std::size_t jobs = (count + shard - 1) / shard;
    std::vector<std::vector<InstanceResult>> blocks =
        engine_.map<std::vector<InstanceResult>>(jobs, [&](std::size_t job) {
          const std::size_t first = job * shard;
          const std::size_t width = std::min(shard, count - first);
          if (options_.cancel && options_.cancel()) {
            // Skipped units are not emitted: the sink only ever sees
            // instances that actually ran.
            return std::vector<InstanceResult>(width, cancelled_instance());
          }
          try {
            std::vector<InstanceResult> block = lane_engine_->run_block(
                first, width, inputs_, options_.max_cycles,
                options_.max_delta_cycles);
            emit(first, block);
            return block;
          } catch (const std::exception&) {
            // One lane poisoned the whole SoA block (typically its input
            // provider threw). Isolate by re-running the block one lane at
            // a time: single-lane results equal multi-lane results by the
            // lane contract, so healthy instances are byte-identical to the
            // un-failed run and only the offender reports an error.
            std::vector<InstanceResult> isolated;
            isolated.reserve(width);
            for (std::size_t i = 0; i < width; ++i) {
              try {
                std::vector<InstanceResult> one = lane_engine_->run_block(
                    first + i, 1, inputs_, options_.max_cycles,
                    options_.max_delta_cycles);
                isolated.push_back(std::move(one[0]));
              } catch (const std::exception& error) {
                InstanceResult failed;
                failed.report.status = RunStatus::kError;
                failed.report.diagnostics.push_back(
                    error_diagnostic(error.what()));
                isolated.push_back(std::move(failed));
              }
            }
            emit(first, isolated);
            return isolated;
          }
        });
    result.instances.reserve(count);
    for (std::vector<InstanceResult>& block_results : blocks) {
      for (InstanceResult& instance : block_results) {
        result.instances.push_back(std::move(instance));
      }
    }
  } else {
    result.instances =
        engine_.map<InstanceResult>(count, [&](std::size_t instance) {
          if (options_.cancel && options_.cancel()) {
            return cancelled_instance();
          }
          InstanceResult one = run_one(instance);
          emit(instance, std::span<const InstanceResult>(&one, 1));
          return one;
        });
  }
  result.wall_time_ns = engine_.last_dispatch().wall_time_ns;
  result.workers = engine_.worker_count();
  for (const InstanceResult& instance : result.instances) {
    result.total = result.total + instance.stats;
  }
  return result;
}

}  // namespace ctrtl::rtl
