#include "rtl/batch_runner.h"

#include <stdexcept>

namespace ctrtl::rtl {

InstanceResult run_instance(RtModel& model, std::uint64_t max_cycles) {
  InstanceResult result;
  RunResult run = model.run(max_cycles);
  result.cycles = run.cycles;
  result.stats = run.stats;
  result.conflicts = std::move(run.conflicts);
  result.registers.reserve(model.registers().size());
  for (const auto& reg : model.registers()) {
    result.registers.emplace_back(reg->name(), reg->value());
  }
  return result;
}

BatchRunner::BatchRunner(ModelFactory factory, BatchRunOptions options)
    : factory_(std::move(factory)),
      options_(options),
      engine_(kernel::BatchOptions{options.workers}) {
  if (!factory_) {
    throw std::invalid_argument("BatchRunner requires a model factory");
  }
}

InstanceResult BatchRunner::run_one(std::size_t instance) const {
  const std::unique_ptr<RtModel> model = factory_(instance);
  if (!model) {
    throw std::invalid_argument("model factory returned null for instance " +
                                std::to_string(instance));
  }
  return run_instance(*model, options_.max_cycles);
}

BatchRunResult BatchRunner::run(std::size_t count) {
  BatchRunResult result;
  result.instances = engine_.map<InstanceResult>(
      count, [this](std::size_t instance) { return run_one(instance); });
  result.wall_time_ns = engine_.last_dispatch().wall_time_ns;
  result.workers = engine_.worker_count();
  for (const InstanceResult& instance : result.instances) {
    result.total = result.total + instance.stats;
  }
  return result;
}

}  // namespace ctrtl::rtl
