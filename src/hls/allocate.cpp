#include "hls/allocate.h"

#include <algorithm>
#include <vector>

namespace ctrtl::hls {

std::map<std::size_t, Lifetime> lifetimes(const Dfg& dfg,
                                          const Scheduled& schedule) {
  std::map<std::size_t, Lifetime> result;
  for (const Dfg::Node& node : dfg.nodes()) {
    const unsigned def = schedule.op_for(node.id).finish;
    result[node.id] = Lifetime{def, def};
  }
  for (const Dfg::Node& consumer : dfg.nodes()) {
    for (const ValueRef& arg : consumer.args) {
      if (arg.kind == ValueRef::Kind::kNode) {
        Lifetime& life = result.at(arg.node);
        life.last_use = std::max(life.last_use, schedule.op_for(consumer.id).start);
      }
    }
  }
  for (const auto& [name, ref] : dfg.outputs()) {
    if (ref.kind == ValueRef::Kind::kNode) {
      // Outputs are read *after* the run; they must survive every step,
      // including the final one's writes.
      result.at(ref.node).last_use = schedule.makespan + 1;
    }
  }
  return result;
}

Allocation allocate_registers(const Dfg& dfg, const Scheduled& schedule) {
  const std::map<std::size_t, Lifetime> lives = lifetimes(dfg, schedule);

  // Left-edge: sort by definition step, greedily pack into register tracks.
  std::vector<std::size_t> order;
  order.reserve(lives.size());
  for (const auto& [node, life] : lives) {
    order.push_back(node);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return lives.at(a).def != lives.at(b).def ? lives.at(a).def < lives.at(b).def
                                              : a < b;
  });

  Allocation allocation;
  struct Track {
    unsigned last_use = 0;
    unsigned last_def = 0;
  };
  std::vector<Track> tracks;
  for (const std::size_t node : order) {
    const Lifetime& life = lives.at(node);
    std::size_t track = tracks.size();
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      // Safe to share when (a) the new value is written (at cr) no earlier
      // than the step in which the old value is last read (at ra), and
      // (b) the two writes land in different steps — two writes into one
      // register in the same step would be a wb conflict.
      if (life.def >= tracks[i].last_use && life.def > tracks[i].last_def) {
        track = i;
        break;
      }
    }
    if (track == tracks.size()) {
      tracks.push_back(Track{life.last_use, life.def});
    } else {
      tracks[track] = Track{life.last_use, life.def};
    }
    allocation.value_register[node] = "v" + std::to_string(track);
  }
  allocation.num_registers = static_cast<unsigned>(tracks.size());
  return allocation;
}

}  // namespace ctrtl::hls
