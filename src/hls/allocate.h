#pragma once

#include <map>
#include <string>

#include "hls/schedule.h"

namespace ctrtl::hls {

/// Storage binding for the scheduled dataflow graph: which register holds
/// each node's result. Registers are shared between values with disjoint
/// lifetimes via the classic left-edge algorithm.
struct Allocation {
  /// node id -> register name ("v0", "v1", ...)
  std::map<std::size_t, std::string> value_register;
  unsigned num_registers = 0;
};

/// Lifetime of a node's value: written at the end of step `def`
/// (= op finish), last consumed during step `last_use` (>= def). Values
/// feeding a graph output stay live through the whole schedule.
struct Lifetime {
  unsigned def = 0;
  unsigned last_use = 0;
};

/// Computes value lifetimes under the schedule.
[[nodiscard]] std::map<std::size_t, Lifetime> lifetimes(const Dfg& dfg,
                                                        const Scheduled& schedule);

/// Left-edge register allocation. Two values may share a register when the
/// later one is defined no earlier than the earlier one's last use (the
/// write happens at `cr`, after all reads of that step).
[[nodiscard]] Allocation allocate_registers(const Dfg& dfg,
                                            const Scheduled& schedule);

}  // namespace ctrtl::hls
