#include "hls/dfg.h"

#include <algorithm>
#include <stdexcept>

namespace ctrtl::hls {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
      return "add";
    case OpKind::kSub:
      return "sub";
    case OpKind::kMul:
      return "mul";
    case OpKind::kMin:
      return "min";
    case OpKind::kMax:
      return "max";
    case OpKind::kNeg:
      return "neg";
    case OpKind::kCopy:
      return "copy";
  }
  return "<corrupt>";
}

unsigned arity(OpKind kind) {
  switch (kind) {
    case OpKind::kNeg:
    case OpKind::kCopy:
      return 1;
    default:
      return 2;
  }
}

ValueRef ValueRef::of_input(std::string name) {
  ValueRef ref;
  ref.kind = Kind::kInput;
  ref.input = std::move(name);
  return ref;
}

ValueRef ValueRef::of_constant(std::int64_t value) {
  ValueRef ref;
  ref.kind = Kind::kConstant;
  ref.constant = value;
  return ref;
}

ValueRef ValueRef::of_node(std::size_t id) {
  ValueRef ref;
  ref.kind = Kind::kNode;
  ref.node = id;
  return ref;
}

std::string to_string(const ValueRef& ref) {
  switch (ref.kind) {
    case ValueRef::Kind::kInput:
      return "$" + ref.input;
    case ValueRef::Kind::kConstant:
      return std::to_string(ref.constant);
    case ValueRef::Kind::kNode:
      return "n" + std::to_string(ref.node);
  }
  return "<corrupt>";
}

void Dfg::add_input(const std::string& name) {
  if (has_input(name)) {
    throw std::invalid_argument("duplicate input '" + name + "'");
  }
  inputs_.push_back(name);
}

bool Dfg::has_input(const std::string& name) const {
  return std::find(inputs_.begin(), inputs_.end(), name) != inputs_.end();
}

void Dfg::check_ref(const ValueRef& ref, const char* context) const {
  switch (ref.kind) {
    case ValueRef::Kind::kInput:
      if (!has_input(ref.input)) {
        throw std::invalid_argument(std::string(context) + ": unknown input '" +
                                    ref.input + "'");
      }
      break;
    case ValueRef::Kind::kNode:
      if (ref.node >= nodes_.size()) {
        throw std::invalid_argument(std::string(context) +
                                    ": forward/unknown node reference");
      }
      break;
    case ValueRef::Kind::kConstant:
      break;
  }
}

std::size_t Dfg::add_node(OpKind kind, std::vector<ValueRef> args) {
  if (args.size() != arity(kind)) {
    throw std::invalid_argument("op '" + to_string(kind) + "' needs " +
                                std::to_string(arity(kind)) + " arguments");
  }
  for (const ValueRef& arg : args) {
    check_ref(arg, "add_node");
  }
  nodes_.push_back(Node{nodes_.size(), kind, std::move(args)});
  return nodes_.back().id;
}

void Dfg::mark_output(const std::string& name, ValueRef ref) {
  check_ref(ref, "mark_output");
  outputs_[name] = std::move(ref);
}

bool Dfg::validate(common::DiagnosticBag& diags) const {
  if (nodes_.empty()) {
    diags.error("dataflow graph has no operations");
  }
  if (outputs_.empty()) {
    diags.error("dataflow graph has no outputs");
  }
  return !diags.has_errors();
}

std::map<std::string, std::int64_t> evaluate(
    const Dfg& dfg, const std::map<std::string, std::int64_t>& inputs) {
  std::vector<std::int64_t> values(dfg.nodes().size(), 0);
  const auto resolve = [&](const ValueRef& ref) -> std::int64_t {
    switch (ref.kind) {
      case ValueRef::Kind::kInput: {
        const auto it = inputs.find(ref.input);
        if (it == inputs.end()) {
          throw std::invalid_argument("evaluate: missing input '" + ref.input + "'");
        }
        return it->second;
      }
      case ValueRef::Kind::kConstant:
        return ref.constant;
      case ValueRef::Kind::kNode:
        return values[ref.node];
    }
    throw std::logic_error("evaluate: corrupt ref");
  };
  for (const Dfg::Node& node : dfg.nodes()) {
    const std::int64_t a = resolve(node.args[0]);
    const std::int64_t b = node.args.size() > 1 ? resolve(node.args[1]) : 0;
    switch (node.kind) {
      case OpKind::kAdd:
        values[node.id] = a + b;
        break;
      case OpKind::kSub:
        values[node.id] = a - b;
        break;
      case OpKind::kMul:
        values[node.id] = a * b;
        break;
      case OpKind::kMin:
        values[node.id] = std::min(a, b);
        break;
      case OpKind::kMax:
        values[node.id] = std::max(a, b);
        break;
      case OpKind::kNeg:
        values[node.id] = -a;
        break;
      case OpKind::kCopy:
        values[node.id] = a;
        break;
    }
  }
  std::map<std::string, std::int64_t> outputs;
  for (const auto& [name, ref] : dfg.outputs()) {
    outputs[name] = resolve(ref);
  }
  return outputs;
}

}  // namespace ctrtl::hls
