#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/diagnostics.h"

namespace ctrtl::hls {

/// Operation repertoire of the high-level synthesis front end.
enum class OpKind : std::uint8_t { kAdd, kSub, kMul, kMin, kMax, kNeg, kCopy };

[[nodiscard]] std::string to_string(OpKind kind);
[[nodiscard]] unsigned arity(OpKind kind);

/// A value consumed by an operation: an external input, a literal, or the
/// result of another node.
struct ValueRef {
  enum class Kind : std::uint8_t { kInput, kConstant, kNode };

  Kind kind = Kind::kConstant;
  std::string input;        // kInput
  std::int64_t constant = 0;  // kConstant
  std::size_t node = 0;       // kNode

  [[nodiscard]] static ValueRef of_input(std::string name);
  [[nodiscard]] static ValueRef of_constant(std::int64_t value);
  [[nodiscard]] static ValueRef of_node(std::size_t id);

  friend bool operator==(const ValueRef&, const ValueRef&) = default;
};

[[nodiscard]] std::string to_string(const ValueRef& ref);

/// A dataflow graph: the algorithmic-level input to scheduling and
/// allocation. Acyclic by construction — `add_node` only accepts references
/// to already-created nodes.
class Dfg {
 public:
  struct Node {
    std::size_t id = 0;
    OpKind kind = OpKind::kAdd;
    std::vector<ValueRef> args;
  };

  /// Declares an external input (becomes a preloaded register).
  void add_input(const std::string& name);

  /// Adds an operation; returns its node id. Throws std::invalid_argument
  /// on arity mismatch or forward references.
  std::size_t add_node(OpKind kind, std::vector<ValueRef> args);

  /// Names a value as a graph output.
  void mark_output(const std::string& name, ValueRef ref);

  [[nodiscard]] const std::vector<std::string>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::map<std::string, ValueRef>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] bool has_input(const std::string& name) const;

  /// Structural validation (all refs resolvable, outputs named, >= 1 node).
  bool validate(common::DiagnosticBag& diags) const;

 private:
  void check_ref(const ValueRef& ref, const char* context) const;

  std::vector<std::string> inputs_;
  std::vector<Node> nodes_;
  std::map<std::string, ValueRef> outputs_;
};

/// Reference (algorithmic-level) evaluation: the golden model HLS results
/// are verified against, per the paper's "verify the correctness of high
/// level synthesis results at an early stage".
[[nodiscard]] std::map<std::string, std::int64_t> evaluate(
    const Dfg& dfg, const std::map<std::string, std::int64_t>& inputs);

}  // namespace ctrtl::hls
