#include "hls/schedule.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "rtl/modules.h"

namespace ctrtl::hls {

Resources default_resources() {
  return Resources{{
      UnitSpec{"ALU", transfer::ModuleKind::kAlu, 1},
      UnitSpec{"MUL", transfer::ModuleKind::kMul, 2},
  }};
}

bool unit_supports(transfer::ModuleKind kind, OpKind op) {
  switch (kind) {
    case transfer::ModuleKind::kAdd:
      return op == OpKind::kAdd;
    case transfer::ModuleKind::kSub:
      return op == OpKind::kSub;
    case transfer::ModuleKind::kMul:
      return op == OpKind::kMul;
    case transfer::ModuleKind::kCopy:
      return op == OpKind::kCopy;
    case transfer::ModuleKind::kAlu:
      switch (op) {
        case OpKind::kAdd:
        case OpKind::kSub:
        case OpKind::kMin:
        case OpKind::kMax:
        case OpKind::kNeg:
        case OpKind::kCopy:
          return true;
        default:
          return false;
      }
    default:
      return false;  // MACC/CORDIC are not HLS targets here
  }
}

std::optional<std::int64_t> op_code_for(transfer::ModuleKind kind, OpKind op) {
  if (kind != transfer::ModuleKind::kAlu) {
    return std::nullopt;
  }
  switch (op) {
    case OpKind::kAdd:
      return rtl::alu_ops::kAdd;
    case OpKind::kSub:
      return rtl::alu_ops::kSub;
    case OpKind::kMin:
      return rtl::alu_ops::kMin;
    case OpKind::kMax:
      return rtl::alu_ops::kMax;
    case OpKind::kNeg:
      return rtl::alu_ops::kNegA;
    case OpKind::kCopy:
      return rtl::alu_ops::kPassA;
    default:
      return std::nullopt;
  }
}

namespace {

unsigned min_latency(const Resources& resources, OpKind op) {
  unsigned best = 0;
  bool found = false;
  for (const UnitSpec& unit : resources.units) {
    if (unit_supports(unit.kind, op) && (!found || unit.latency < best)) {
      best = unit.latency;
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("no unit supports operation '" + to_string(op) +
                                "'");
  }
  return best;
}

}  // namespace

std::map<std::size_t, unsigned> asap(const Dfg& dfg, const Resources& resources) {
  std::map<std::size_t, unsigned> start;
  for (const Dfg::Node& node : dfg.nodes()) {
    unsigned earliest = 1;
    for (const ValueRef& arg : node.args) {
      if (arg.kind == ValueRef::Kind::kNode) {
        const unsigned finish =
            start.at(arg.node) + min_latency(resources, dfg.nodes()[arg.node].kind);
        earliest = std::max(earliest, finish + 1);
      }
    }
    start[node.id] = earliest;
  }
  return start;
}

std::map<std::size_t, unsigned> alap(const Dfg& dfg, const Resources& resources,
                                     unsigned deadline) {
  std::map<std::size_t, unsigned> start;
  // Process in reverse topological order (node ids are topological).
  for (std::size_t i = dfg.nodes().size(); i-- > 0;) {
    const Dfg::Node& node = dfg.nodes()[i];
    const unsigned latency = min_latency(resources, node.kind);
    if (deadline < latency) {
      throw std::invalid_argument("alap: deadline shorter than latency");
    }
    unsigned latest = deadline - latency;  // finish by deadline
    for (const Dfg::Node& consumer : dfg.nodes()) {
      for (const ValueRef& arg : consumer.args) {
        if (arg.kind == ValueRef::Kind::kNode && arg.node == node.id) {
          // consumer.start >= finish + 1  =>  start <= consumer.start - latency - 1
          const unsigned consumer_start = start.at(consumer.id);
          if (consumer_start < latency + 1) {
            throw std::invalid_argument("alap: deadline infeasible");
          }
          latest = std::min(latest, consumer_start - latency - 1);
        }
      }
    }
    if (latest < 1) {
      throw std::invalid_argument("alap: deadline infeasible");
    }
    start[node.id] = latest;
  }
  return start;
}

Scheduled list_schedule(const Dfg& dfg, const Resources& resources) {
  // Priorities: ALAP against a generous deadline; smaller slack first.
  const std::map<std::size_t, unsigned> asap_steps = asap(dfg, resources);
  unsigned horizon = 1;
  for (const auto& [node, start] : asap_steps) {
    horizon = std::max(horizon, start + min_latency(resources, dfg.nodes()[node].kind));
  }
  // Worst case fully serialized: sum of latencies + one step per op.
  unsigned serial = 1;
  for (const Dfg::Node& node : dfg.nodes()) {
    serial += min_latency(resources, node.kind) + 1;
  }
  const std::map<std::size_t, unsigned> alap_steps =
      alap(dfg, resources, std::max(horizon, serial));

  Scheduled result;
  result.ops.resize(dfg.nodes().size());
  std::vector<bool> scheduled(dfg.nodes().size(), false);
  std::vector<unsigned> finish(dfg.nodes().size(), 0);
  // unit -> steps at which it already starts an operation
  std::map<std::string, std::set<unsigned>> unit_busy;

  std::size_t remaining = dfg.nodes().size();
  unsigned step = 1;
  const unsigned step_limit = serial * 4 + 16;  // defensive bound
  while (remaining > 0) {
    if (step > step_limit) {
      throw std::logic_error("list_schedule: failed to converge");
    }
    // Ready: unscheduled ops whose node operands are available before `step`.
    std::vector<std::size_t> ready;
    for (const Dfg::Node& node : dfg.nodes()) {
      if (scheduled[node.id]) {
        continue;
      }
      bool ok = true;
      for (const ValueRef& arg : node.args) {
        if (arg.kind == ValueRef::Kind::kNode &&
            (!scheduled[arg.node] || finish[arg.node] >= step)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        ready.push_back(node.id);
      }
    }
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      return alap_steps.at(a) < alap_steps.at(b);
    });
    for (const std::size_t node : ready) {
      const OpKind op = dfg.nodes()[node].kind;
      for (const UnitSpec& unit : resources.units) {
        if (!unit_supports(unit.kind, op) || unit_busy[unit.name].contains(step)) {
          continue;
        }
        unit_busy[unit.name].insert(step);
        scheduled[node] = true;
        finish[node] = step + unit.latency;
        result.ops[node] = Scheduled::Op{node, step, finish[node], unit.name};
        result.makespan = std::max(result.makespan, finish[node]);
        --remaining;
        break;
      }
    }
    ++step;
  }
  return result;
}

}  // namespace ctrtl::hls
