#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hls/dfg.h"
#include "transfer/design.h"

namespace ctrtl::hls {

/// One functional unit available to the scheduler.
struct UnitSpec {
  std::string name;
  transfer::ModuleKind kind = transfer::ModuleKind::kAlu;
  unsigned latency = 1;
};

/// The resource allocation given to scheduling (the paper's "resources are
/// allocated and register transfers are scheduled").
struct Resources {
  std::vector<UnitSpec> units;
};

/// One ALU plus one two-stage multiplier — a sensible default datapath.
[[nodiscard]] Resources default_resources();

/// Can a unit of this kind execute the operation?
[[nodiscard]] bool unit_supports(transfer::ModuleKind kind, OpKind op);

/// The op code a unit needs on its operation port for `op` (nullopt for
/// fixed-function units).
[[nodiscard]] std::optional<std::int64_t> op_code_for(transfer::ModuleKind kind,
                                                      OpKind op);

/// Result of scheduling + binding.
struct Scheduled {
  struct Op {
    std::size_t node = 0;
    unsigned start = 0;        // read step
    unsigned finish = 0;       // write step (start + unit latency)
    std::string unit;
  };
  std::vector<Op> ops;  // indexed by node id
  unsigned makespan = 0;  // last write step == required cs_max

  [[nodiscard]] const Op& op_for(std::size_t node) const { return ops.at(node); }
};

/// As-soon-as-possible start steps (ignoring resource limits); uses each
/// node's minimum latency over the supporting units. Step numbering starts
/// at 1; a consumer starts no earlier than producer finish + 1 (the value
/// must pass through its register).
[[nodiscard]] std::map<std::size_t, unsigned> asap(const Dfg& dfg,
                                                   const Resources& resources);

/// As-late-as-possible start steps against `deadline`.
[[nodiscard]] std::map<std::size_t, unsigned> alap(const Dfg& dfg,
                                                   const Resources& resources,
                                                   unsigned deadline);

/// Resource-constrained list scheduling with ALAP-slack priority; every
/// unit is pipelined with initiation interval 1 (the paper's modules), so
/// a unit accepts one new operation per control step.
/// Throws std::invalid_argument when some operation has no supporting unit.
[[nodiscard]] Scheduled list_schedule(const Dfg& dfg, const Resources& resources);

}  // namespace ctrtl::hls
