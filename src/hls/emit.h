#pragma once

#include <map>
#include <string>

#include "hls/allocate.h"
#include "hls/schedule.h"
#include "transfer/design.h"

namespace ctrtl::hls {

/// The product of high-level synthesis: an abstract register-transfer
/// design plus the mapping needed to read results back.
struct EmitResult {
  transfer::Design design;
  /// output name -> register holding it after the run
  std::map<std::string, std::string> output_registers;
  /// outputs that are plain literals or inputs (no register involved)
  std::map<std::string, std::int64_t> constant_outputs;
  std::map<std::string, std::string> input_outputs;
};

/// Lowers a scheduled+allocated dataflow graph into a transfer::Design:
/// one full 9-tuple per operation, buses assigned per step (reads and
/// writes may share buses — their transfer windows are phase-disjoint),
/// inputs as design inputs, literals as constant sources.
[[nodiscard]] EmitResult emit_design(const Dfg& dfg, const Scheduled& schedule,
                                     const Allocation& allocation,
                                     const std::string& name);

/// The whole flow: validate, schedule, allocate, emit. This is the paper's
/// application 2: "High level synthesis results are translated into our
/// subset and can then be simulated at a high level."
[[nodiscard]] EmitResult synthesize(const Dfg& dfg, const Resources& resources,
                                    const std::string& name);

}  // namespace ctrtl::hls
