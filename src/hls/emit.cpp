#include "hls/emit.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ctrtl::hls {

namespace {

std::string constant_name(std::int64_t value) {
  return value < 0 ? "cm" + std::to_string(-value) : "c" + std::to_string(value);
}

}  // namespace

EmitResult emit_design(const Dfg& dfg, const Scheduled& schedule,
                       const Allocation& allocation, const std::string& name) {
  EmitResult result;
  transfer::Design& design = result.design;
  design.name = name;
  design.cs_max = std::max(schedule.makespan, 1u);

  for (const std::string& input : dfg.inputs()) {
    design.inputs.push_back({input});
  }
  std::set<std::string> registers;
  for (const auto& [node, reg] : allocation.value_register) {
    registers.insert(reg);
  }
  for (const std::string& reg : registers) {
    design.registers.push_back({reg, std::nullopt});
  }

  // Literal pool.
  std::set<std::int64_t> literals;
  for (const Dfg::Node& node : dfg.nodes()) {
    for (const ValueRef& arg : node.args) {
      if (arg.kind == ValueRef::Kind::kConstant) {
        literals.insert(arg.constant);
      }
    }
  }
  for (const std::int64_t value : literals) {
    design.constants.push_back({constant_name(value), value});
  }

  const auto source_endpoint = [&](const ValueRef& ref) -> transfer::Endpoint {
    switch (ref.kind) {
      case ValueRef::Kind::kInput:
        return transfer::Endpoint::input(ref.input);
      case ValueRef::Kind::kConstant:
        return transfer::Endpoint::constant(constant_name(ref.constant));
      case ValueRef::Kind::kNode:
        return transfer::Endpoint::register_out(
            allocation.value_register.at(ref.node));
    }
    throw std::logic_error("emit_design: corrupt ref");
  };

  // Bus assignment: reads of a step use buses 0..k in slot order, writes of
  // a step use buses 0..m — read and write windows of one step never
  // overlap in phase, so they may share bus names.
  std::map<unsigned, unsigned> read_slots;   // step -> next free bus
  std::map<unsigned, unsigned> write_slots;  // step -> next free bus
  unsigned max_bus = 0;

  const auto next_bus = [&](std::map<unsigned, unsigned>& slots,
                            unsigned step) -> std::string {
    const unsigned index = slots[step]++;
    max_bus = std::max(max_bus, index + 1);
    return "B" + std::to_string(index);
  };

  for (const Dfg::Node& node : dfg.nodes()) {
    const Scheduled::Op& op = schedule.op_for(node.id);
    transfer::RegisterTransfer tuple;
    tuple.read_step = op.start;
    tuple.module = op.unit;
    tuple.operand_a = transfer::OperandPath{source_endpoint(node.args[0]),
                                            next_bus(read_slots, op.start)};
    if (node.args.size() > 1) {
      tuple.operand_b = transfer::OperandPath{source_endpoint(node.args[1]),
                                              next_bus(read_slots, op.start)};
    }
    tuple.write_step = op.finish;
    tuple.write_bus = next_bus(write_slots, op.finish);
    tuple.destination = allocation.value_register.at(node.id);
    // Op codes are attached by `synthesize` once unit kinds are known.
    design.transfers.push_back(std::move(tuple));
  }

  for (const auto& [out_name, ref] : dfg.outputs()) {
    switch (ref.kind) {
      case ValueRef::Kind::kNode:
        result.output_registers[out_name] = allocation.value_register.at(ref.node);
        break;
      case ValueRef::Kind::kConstant:
        result.constant_outputs[out_name] = ref.constant;
        break;
      case ValueRef::Kind::kInput:
        result.input_outputs[out_name] = ref.input;
        break;
    }
  }

  for (unsigned i = 0; i < std::max(max_bus, 1u); ++i) {
    design.buses.push_back({"B" + std::to_string(i)});
  }
  return result;
}

EmitResult synthesize(const Dfg& dfg, const Resources& resources,
                      const std::string& name) {
  common::DiagnosticBag diags;
  if (!dfg.validate(diags)) {
    throw std::invalid_argument("synthesize: invalid dataflow graph:\n" +
                                diags.to_text());
  }
  const Scheduled schedule = list_schedule(dfg, resources);
  const Allocation allocation = allocate_registers(dfg, schedule);
  EmitResult result = emit_design(dfg, schedule, allocation, name);

  // Module declarations from the resource spec (only units actually used).
  std::set<std::string> used;
  for (const Scheduled::Op& op : schedule.ops) {
    used.insert(op.unit);
  }
  for (const UnitSpec& unit : resources.units) {
    if (used.contains(unit.name)) {
      result.design.modules.push_back(
          {unit.name, unit.kind, unit.latency, /*frac_bits=*/0});
    }
  }
  // Attach op codes now that unit kinds are known.
  std::map<std::string, transfer::ModuleKind> kinds;
  for (const transfer::ModuleDecl& module : result.design.modules) {
    kinds[module.name] = module.kind;
  }
  for (std::size_t i = 0; i < dfg.nodes().size(); ++i) {
    const Scheduled::Op& op = schedule.op_for(i);
    result.design.transfers[i].op = op_code_for(kinds.at(op.unit),
                                                dfg.nodes()[i].kind);
  }
  return result;
}

}  // namespace ctrtl::hls
