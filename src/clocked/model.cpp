#include "clocked/model.h"

#include <stdexcept>

#include "transfer/module_sim.h"

namespace ctrtl::clocked {

using rtl::RtValue;
using Signal = kernel::Signal<RtValue>;

/// Kernel-side structure: signals, drivers, and the datapath state the
/// processes operate on.
struct ClockedModel::Impl {
  const transfer::Design* design = nullptr;
  TranslationPlan plan;  // copied: the model outlives the caller's plan

  kernel::Signal<bool>* clk = nullptr;
  kernel::DriverId clk_driver = 0;
  kernel::Signal<unsigned>* step = nullptr;
  kernel::DriverId step_driver = 0;

  struct RegisterState {
    Signal* q = nullptr;
    kernel::DriverId driver = 0;
    const std::vector<WriteSelect>* writes = nullptr;
  };
  std::map<std::string, RegisterState> registers;

  struct UnitState {
    transfer::ModuleSim sim;
    const std::map<unsigned, ModuleActivation>* schedule = nullptr;
    explicit UnitState(const transfer::ModuleDecl& decl) : sim(decl) {}
  };
  std::map<std::string, UnitState> units;

  std::map<std::string, RtValue> constants;
  std::map<std::string, std::pair<Signal*, kernel::DriverId>> inputs;

  [[nodiscard]] RtValue source_value(const transfer::Endpoint& source) const {
    using transfer::Endpoint;
    switch (source.kind) {
      case Endpoint::Kind::kRegisterOut:
        return registers.at(source.resource).q->read();
      case Endpoint::Kind::kConstant:
        return constants.at(source.resource);
      case Endpoint::Kind::kInput:
        return inputs.at(source.resource).first->read();
      default:
        throw std::logic_error("clocked datapath: unsupported operand source '" +
                               to_string(source) + "'");
    }
  }
};

namespace {

kernel::Process clock_process(kernel::Scheduler& sched, kernel::Signal<bool>& clk,
                              kernel::DriverId driver, unsigned cycles,
                              std::uint64_t period_fs) {
  (void)sched;
  for (unsigned i = 0; i < cycles; ++i) {
    clk.drive(driver, true);
    co_await kernel::wait_for_fs(period_fs / 2);
    clk.drive(driver, false);
    co_await kernel::wait_for_fs(period_fs - period_fs / 2);
  }
}

}  // namespace

namespace {

void evaluate_units(ClockedModel::Impl& impl, unsigned step,
                    std::map<std::string, RtValue>& unit_out) {
  // Datapath units: operand muxes select by the current step; each unit
  // advances its pipeline once per control step.
  for (auto& [name, unit] : impl.units) {
    std::vector<RtValue> operands(unit.sim.decl().num_inputs(), RtValue::disc());
    RtValue op = RtValue::disc();
    if (unit.schedule != nullptr) {
      const auto it = unit.schedule->find(step);
      if (it != unit.schedule->end()) {
        for (const OperandSelect& operand : it->second.operands) {
          operands[operand.port] = impl.source_value(operand.source);
        }
        if (it->second.op.has_value()) {
          op = RtValue::of(*it->second.op);
        }
      }
    }
    unit_out[name] = unit.sim.step(operands, op);
  }
}

void latch_registers(ClockedModel::Impl& impl, unsigned step,
                     const std::map<std::string, RtValue>& unit_out,
                     std::vector<verify::RegisterWrite>& writes) {
  // Register write muxes: latch the selected unit output when a write is
  // scheduled for this step and the value is not DISC (the abstract REG's
  // `if R_in /= DISC` guard).
  for (auto& [name, reg] : impl.registers) {
    if (reg.writes == nullptr) {
      continue;
    }
    for (const WriteSelect& write : *reg.writes) {
      if (write.step != step) {
        continue;
      }
      const RtValue value = unit_out.at(write.module);
      if (value.is_disc()) {
        continue;
      }
      if (value != reg.q->read()) {
        writes.push_back(verify::RegisterWrite{step, name, value});
      }
      reg.q->drive(reg.driver, value);
    }
  }
}

}  // namespace

// The complete synchronous datapath, evaluated once per rising edge. All
// signal reads see pre-edge values (drives are delta-delayed), so the
// single-process form is cycle-equivalent to one process per flop.
static kernel::Process datapath_process(ClockedModel::Impl& impl,
                                        std::vector<verify::RegisterWrite>& writes) {
  auto& clk = *impl.clk;
  const std::vector<kernel::SignalBase*> sensitivity = {&clk};
  for (;;) {
    co_await kernel::wait_until(sensitivity, [&clk] { return clk.read(); });
    const unsigned step = impl.step->read();
    std::map<std::string, RtValue> unit_out;
    evaluate_units(impl, step, unit_out);
    latch_registers(impl, step, unit_out, writes);
    impl.step->drive(impl.step_driver, step + 1);
  }
}

// Two-cycles-per-step variant: edge A computes, edge B latches. The unit
// outputs captured at the compute edge feed the latch edge (they are the
// pipeline-stage flop values of that control step).
static kernel::Process datapath_process_two_phase(
    ClockedModel::Impl& impl, std::vector<verify::RegisterWrite>& writes) {
  auto& clk = *impl.clk;
  const std::vector<kernel::SignalBase*> sensitivity = {&clk};
  std::map<std::string, RtValue> unit_out;
  for (;;) {
    // Compute edge.
    co_await kernel::wait_until(sensitivity, [&clk] { return clk.read(); });
    const unsigned step = impl.step->read();
    unit_out.clear();
    evaluate_units(impl, step, unit_out);
    // Latch edge.
    co_await kernel::wait_until(sensitivity, [&clk] { return clk.read(); });
    latch_registers(impl, step, unit_out, writes);
    impl.step->drive(impl.step_driver, step + 1);
  }
}

ClockedModel::ClockedModel(const TranslationPlan& plan, std::uint64_t period_fs,
                           ClockScheme scheme)
    : scheduler_(std::make_unique<kernel::Scheduler>()),
      impl_(std::make_unique<Impl>()),
      clock_cycles_(scheme == ClockScheme::kTwoCyclesPerStep
                        ? 2 * plan.clock_cycles
                        : plan.clock_cycles),
      period_fs_(period_fs),
      scheme_(scheme) {
  impl_->plan = plan;
  const transfer::Design& design = impl_->plan.design;
  impl_->design = &impl_->plan.design;

  impl_->clk = &scheduler_->make_signal<bool>("clk", false);
  impl_->clk_driver = impl_->clk->add_driver(false);
  impl_->step = &scheduler_->make_signal<unsigned>("step", 0u);
  impl_->step_driver = impl_->step->add_driver(0u);

  for (const transfer::RegisterDecl& reg : design.registers) {
    Signal& q = scheduler_->make_signal<RtValue>(
        reg.name + ".q", reg.initial.has_value() ? RtValue::of(*reg.initial)
                                                 : RtValue::disc());
    Impl::RegisterState state;
    state.q = &q;
    state.driver = q.add_driver(q.read());
    const auto it = impl_->plan.register_schedule.find(reg.name);
    state.writes = it == impl_->plan.register_schedule.end() ? nullptr : &it->second;
    impl_->registers.emplace(reg.name, state);
  }
  for (const transfer::ModuleDecl& module : design.modules) {
    auto [it, inserted] = impl_->units.emplace(module.name, Impl::UnitState(module));
    const auto sched_it = impl_->plan.module_schedule.find(module.name);
    it->second.schedule = sched_it == impl_->plan.module_schedule.end()
                              ? nullptr
                              : &sched_it->second;
  }
  for (const transfer::ConstantDecl& constant : design.constants) {
    impl_->constants.emplace(constant.name, RtValue::of(constant.value));
  }
  // Implicit op constants are resolved through the plan's `op` field, not
  // through a source endpoint, so nothing to create here.
  for (const transfer::InputDecl& input : design.inputs) {
    Signal& sig =
        scheduler_->make_signal<RtValue>("in." + input.name, RtValue::disc());
    impl_->inputs.emplace(input.name,
                          std::pair{&sig, sig.add_driver(RtValue::disc())});
  }

  if (scheme_ == ClockScheme::kTwoCyclesPerStep) {
    scheduler_->spawn("datapath", datapath_process_two_phase(*impl_, writes_));
  } else {
    scheduler_->spawn("datapath", datapath_process(*impl_, writes_));
  }
  scheduler_->spawn("clock",
                    clock_process(*scheduler_, *impl_->clk, impl_->clk_driver,
                                  clock_cycles_, period_fs_));
}

ClockedModel::~ClockedModel() {
  scheduler_->shutdown();
}

ClockedModel::Result ClockedModel::run() {
  const kernel::KernelStats before = scheduler_->stats();
  const std::uint64_t start_fs = scheduler_->now().fs;
  Result result;
  result.kernel_cycles = scheduler_->run();
  result.stats = scheduler_->stats() - before;
  result.clock_cycles = clock_cycles_;
  result.elapsed_fs = scheduler_->now().fs - start_fs;
  return result;
}

rtl::RtValue ClockedModel::register_value(const std::string& name) const {
  const auto it = impl_->registers.find(name);
  if (it == impl_->registers.end()) {
    throw std::invalid_argument("ClockedModel: no register '" + name + "'");
  }
  return it->second.q->read();
}

void ClockedModel::set_input(const std::string& name, rtl::RtValue value) {
  const auto it = impl_->inputs.find(name);
  if (it == impl_->inputs.end()) {
    throw std::invalid_argument("ClockedModel: no input '" + name + "'");
  }
  it->second.first->drive(it->second.second, value);
}

}  // namespace ctrtl::clocked
