#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clocked/translate.h"
#include "kernel/scheduler.h"
#include "rtl/value.h"
#include "verify/trace.h"

namespace ctrtl::clocked {

/// How control steps map onto clock cycles — the paper: "of course, there
/// are different ways to implement control steps."
enum class ClockScheme : std::uint8_t {
  /// One clock cycle per control step: units evaluate and registers latch
  /// on the same edge (mux-based interconnect).
  kOneCyclePerStep,
  /// Two clock cycles per control step: a compute edge (units evaluate and
  /// advance their pipelines) followed by a latch edge (registers commit).
  /// Slower in cycles, looser timing per cycle — a second legal low-level
  /// architecture for the same abstract model.
  kTwoCyclesPerStep,
};

/// Executable clocked implementation of a translated design: a clock
/// generator running in *physical time*, a step counter, D-flip-flop
/// registers with write muxes, and pipelined datapath units — the concrete
/// RT architecture produced by `plan_translation`.
///
/// Observable behaviour (the per-step register write trace) must equal the
/// clock-free abstract model's for every clock scheme;
/// `verify::compare_write_traces` checks that.
class ClockedModel {
 public:
  /// Builds the model from a plan. `period_fs` is the clock period.
  explicit ClockedModel(const TranslationPlan& plan,
                        std::uint64_t period_fs = 1'000'000,
                        ClockScheme scheme = ClockScheme::kOneCyclePerStep);
  ~ClockedModel();

  ClockedModel(const ClockedModel&) = delete;
  ClockedModel& operator=(const ClockedModel&) = delete;

  struct Result {
    kernel::KernelStats stats;
    std::uint64_t kernel_cycles = 0;
    unsigned clock_cycles = 0;
    /// Physical time consumed (fs) — nonzero, unlike the abstract model.
    std::uint64_t elapsed_fs = 0;
  };

  /// Runs the clock for the planned number of cycles.
  Result run();

  [[nodiscard]] rtl::RtValue register_value(const std::string& name) const;
  void set_input(const std::string& name, rtl::RtValue value);

  /// Register writes committed so far, tagged with the control step whose
  /// cycle performed them (directly comparable with the abstract model's
  /// verify::RegisterWriteTrace, preloads excluded).
  [[nodiscard]] const std::vector<verify::RegisterWrite>& writes() const {
    return writes_;
  }

  [[nodiscard]] kernel::Scheduler& scheduler() { return *scheduler_; }

  /// Kernel-side state shared with the datapath process (public so the
  /// process function in the implementation file can use it).
  struct Impl;

 private:
  std::unique_ptr<kernel::Scheduler> scheduler_;
  std::unique_ptr<Impl> impl_;
  std::vector<verify::RegisterWrite> writes_;
  unsigned clock_cycles_ = 0;
  std::uint64_t period_fs_ = 0;
  ClockScheme scheme_ = ClockScheme::kOneCyclePerStep;
};

}  // namespace ctrtl::clocked
