#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "transfer/design.h"

namespace ctrtl::clocked {

/// One operand feeding a module in a specific control step (a mux entry in
/// the clocked implementation).
struct OperandSelect {
  unsigned port = 0;
  transfer::Endpoint source;

  friend bool operator==(const OperandSelect&, const OperandSelect&) = default;
};

/// Per-module read activity in one step: which sources feed which ports and
/// which operation is selected.
struct ModuleActivation {
  std::vector<OperandSelect> operands;
  std::optional<std::int64_t> op;
};

/// Per-register write activity: in step `step`, register latches the output
/// of `module`.
struct WriteSelect {
  unsigned step = 0;
  std::string module;

  friend bool operator==(const WriteSelect&, const WriteSelect&) = default;
};

/// The control-step → clock-cycle translation of a design (the paper's
/// "succeeding synthesis step ... performed by commercial synthesis tools").
///
/// The chosen low-level architecture is one clock cycle per control step
/// with mux-based interconnect: buses dissolve into operand/write
/// multiplexers selected by a step counter, registers become D-flip-flops
/// with hold paths, pipelined modules keep internal stage registers. This is
/// one of the "several low-level architectures" the abstract model admits.
struct TranslationPlan {
  /// Owned copy: the plan (and models built from it) are self-contained.
  transfer::Design design;
  /// module name -> (read step -> activation)
  std::map<std::string, std::map<unsigned, ModuleActivation>> module_schedule;
  /// register name -> write mux entries (sorted by step)
  std::map<std::string, std::vector<WriteSelect>> register_schedule;
  /// total clock cycles required: cs_max + 1 (final writes latch on the
  /// edge that ends step cs_max)
  unsigned clock_cycles = 0;

  [[nodiscard]] std::string to_text() const;
};

/// Builds the plan. Requires a valid design whose static conflict analysis
/// is clean — translating a schedule with resource conflicts would bake the
/// bug into hardware, so it is rejected with std::invalid_argument (this is
/// exactly the paper's point about catching conflicts at the abstract
/// level).
[[nodiscard]] TranslationPlan plan_translation(const transfer::Design& design);

}  // namespace ctrtl::clocked
