#include "clocked/translate.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "transfer/conflict.h"

namespace ctrtl::clocked {

std::string TranslationPlan::to_text() const {
  std::ostringstream out;
  out << "clock cycles: " << clock_cycles << '\n';
  for (const auto& [module, schedule] : module_schedule) {
    for (const auto& [step, activation] : schedule) {
      out << "cycle " << step << ": " << module << " reads";
      for (const OperandSelect& operand : activation.operands) {
        out << " in" << operand.port + 1 << "<-"
            << transfer::to_string(operand.source);
      }
      if (activation.op.has_value()) {
        out << " op=" << *activation.op;
      }
      out << '\n';
    }
  }
  for (const auto& [reg, writes] : register_schedule) {
    for (const WriteSelect& write : writes) {
      out << "cycle " << write.step << ": " << reg << " <= " << write.module
          << ".out\n";
    }
  }
  return out.str();
}

TranslationPlan plan_translation(const transfer::Design& design) {
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("plan_translation: design does not validate:\n" +
                                diags.to_text());
  }
  const transfer::AnalysisReport analysis = transfer::analyze(design);
  if (!analysis.clean()) {
    std::ostringstream out;
    out << "plan_translation: the abstract schedule has resource conflicts; "
           "fix them before synthesis:\n";
    for (const transfer::DriveConflict& conflict : analysis.drive_conflicts) {
      out << "  " << to_string(conflict) << '\n';
    }
    for (const transfer::DisciplineViolation& violation :
         analysis.discipline_violations) {
      out << "  " << to_string(violation) << '\n';
    }
    throw std::invalid_argument(out.str());
  }

  TranslationPlan plan;
  plan.design = design;
  plan.clock_cycles = design.cs_max + 1;

  for (const transfer::RegisterTransfer& transfer : design.transfers) {
    if (transfer.read_step.has_value()) {
      ModuleActivation& activation =
          plan.module_schedule[transfer.module][*transfer.read_step];
      if (transfer.operand_a) {
        activation.operands.push_back(OperandSelect{0, transfer.operand_a->source});
      }
      if (transfer.operand_b) {
        activation.operands.push_back(OperandSelect{1, transfer.operand_b->source});
      }
      if (transfer.op.has_value()) {
        activation.op = transfer.op;
      }
    }
    if (transfer.write_step.has_value() && transfer.destination.has_value()) {
      plan.register_schedule[*transfer.destination].push_back(
          WriteSelect{*transfer.write_step, transfer.module});
    }
  }
  for (auto& [reg, writes] : plan.register_schedule) {
    std::sort(writes.begin(), writes.end(),
              [](const WriteSelect& a, const WriteSelect& b) {
                return a.step < b.step;
              });
  }
  return plan;
}

}  // namespace ctrtl::clocked
