#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "transfer/tuple.h"

namespace ctrtl::transfer {

/// Read-only introspection over a TRANS instance stream, grouped onto the
/// phase wheel: for every level `(step, phase)` of a cs_max-step run, the
/// instances that *fire* (drive source -> sink) at that level, in stream
/// order. This is the levelization `lower_schedule` performs, exposed as a
/// lightweight non-owning view so analyses — the conflict oracle, static
/// lint passes, the reference evaluator — can walk the exact execution
/// structure every engine realizes without lowering a full `StaticSchedule`
/// (no module ordering, no occupancy, no validation side effects).
///
/// Instances outside 1..cs_max are ignored (they never fire on any engine
/// within the run window); `lower_schedule` is where out-of-range streams
/// are rejected with diagnostics.
class InstanceWalker {
 public:
  InstanceWalker(std::span<const TransInstance> instances, unsigned cs_max);

  [[nodiscard]] unsigned cs_max() const { return cs_max_; }

  /// Instances firing at `(step, phase)`, in stream order. Empty span when
  /// the level is idle or out of range.
  [[nodiscard]] std::span<const TransInstance* const> fires(
      unsigned step, rtl::Phase phase) const;

  /// Total instances inside the run window (== sum of all `fires` sizes).
  [[nodiscard]] std::size_t instance_count() const { return instance_count_; }

  /// Visits every level in execution order — step 1..cs_max, phases ra..cr
  /// within each step — including idle levels (empty `fires`). This is the
  /// delta-cycle order all three engines realize, so a walker-driven
  /// analysis sees sinks resolve in exactly the simulation order.
  void for_each_level(
      const std::function<void(unsigned step, rtl::Phase phase,
                               std::span<const TransInstance* const>)>& visit)
      const;

 private:
  unsigned cs_max_ = 0;
  std::size_t instance_count_ = 0;
  /// levels_[(step-1) * kPhasesPerStep + phase], like ScheduleLevel indexing.
  std::vector<std::vector<const TransInstance*>> levels_;
};

}  // namespace ctrtl::transfer
