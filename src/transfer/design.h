#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "transfer/tuple.h"

namespace ctrtl::transfer {

/// The functional-unit repertoire a `Design` may instantiate. Each kind maps
/// onto one concrete `rtl::Module` subclass when the design is elaborated.
enum class ModuleKind : std::uint8_t {
  kAdd,     // fixed-function a+b
  kSub,     // fixed-function a-b
  kMul,     // fixed-function fixed-point multiply (frac_bits)
  kAlu,     // op-port module with the standard ALU op table
  kCopy,    // unary pass-through (direct-link helper)
  kMacc,    // multiplier/accumulator (op port, stateful)
  kCordic,  // CORDIC sin/cos core (op port)
};

[[nodiscard]] std::string to_string(ModuleKind kind);

struct ModuleDecl {
  std::string name;
  ModuleKind kind = ModuleKind::kAdd;
  /// Pipeline depth in control steps (see rtl::Module). Fixed at 1 for MACC.
  unsigned latency = 1;
  /// Fractional bits for fixed-point kinds (kMul, kMacc, kCordic).
  unsigned frac_bits = 0;
  /// CORDIC iteration count (kCordic only).
  unsigned iterations = 24;

  [[nodiscard]] unsigned num_inputs() const;
  [[nodiscard]] bool has_op_port() const;
};

struct RegisterDecl {
  std::string name;
  std::optional<std::int64_t> initial;
};

struct BusDecl {
  std::string name;
};

struct ConstantDecl {
  std::string name;
  std::int64_t value = 0;
};

struct InputDecl {
  std::string name;
};

/// A complete abstract register-transfer design: the allocated resources
/// plus the scheduled register transfers. This is the data structure the
/// paper's flows exchange — HLS emits it, the microcode translator emits
/// it, `build_model` elaborates it into an executable `rtl::RtModel`, the
/// VHDL emitter prints it as subset source, and the clocked back end
/// translates it to a clocked implementation.
struct Design {
  std::string name = "design";
  unsigned cs_max = 1;
  std::vector<RegisterDecl> registers;
  std::vector<BusDecl> buses;
  std::vector<ModuleDecl> modules;
  std::vector<ConstantDecl> constants;
  std::vector<InputDecl> inputs;
  std::vector<RegisterTransfer> transfers;

  [[nodiscard]] const ModuleDecl* find_module(const std::string& name) const;
  [[nodiscard]] const RegisterDecl* find_register(const std::string& name) const;
  [[nodiscard]] bool has_bus(const std::string& name) const;
  [[nodiscard]] const ConstantDecl* find_constant(const std::string& name) const;
  [[nodiscard]] bool has_input(const std::string& name) const;
};

/// Structural well-formedness: every name a transfer references must be
/// declared, steps must lie in 1..cs_max, module ports must exist, op codes
/// only on op-port modules, write step consistent with module latency.
/// Reports all problems into `diags`; returns !has_errors.
bool validate(const Design& design, common::DiagnosticBag& diags);

}  // namespace ctrtl::transfer
