#include "transfer/text_format.h"

#include <charconv>
#include <optional>
#include <sstream>
#include <vector>

namespace ctrtl::transfer {

namespace {

std::string operand_text(const std::optional<OperandPath>& operand, bool bus) {
  if (!operand.has_value()) {
    return "-";
  }
  if (bus) {
    return operand->bus;
  }
  switch (operand->source.kind) {
    case Endpoint::Kind::kRegisterOut:
      return operand->source.resource;
    case Endpoint::Kind::kConstant:
      return "%" + operand->source.resource;  // '#' is the comment character
    case Endpoint::Kind::kInput:
      return "$" + operand->source.resource;
    default:
      return to_string(operand->source);
  }
}

}  // namespace

std::string to_text(const Design& design) {
  std::ostringstream out;
  out << "design " << design.name << '\n';
  out << "cs_max " << design.cs_max << '\n';
  for (const RegisterDecl& reg : design.registers) {
    out << "register " << reg.name;
    if (reg.initial.has_value()) {
      out << " init " << *reg.initial;
    }
    out << '\n';
  }
  for (const BusDecl& bus : design.buses) {
    out << "bus " << bus.name << '\n';
  }
  for (const InputDecl& input : design.inputs) {
    out << "input " << input.name << '\n';
  }
  for (const ConstantDecl& constant : design.constants) {
    out << "constant " << constant.name << ' ' << constant.value << '\n';
  }
  for (const ModuleDecl& module : design.modules) {
    out << "module " << module.name << ' ' << to_string(module.kind)
        << " latency " << module.latency;
    if (module.frac_bits != 0) {
      out << " frac " << module.frac_bits;
    }
    if (module.kind == ModuleKind::kCordic) {
      out << " iters " << module.iterations;
    }
    out << '\n';
  }
  for (const RegisterTransfer& t : design.transfers) {
    out << "transfer " << operand_text(t.operand_a, false) << ' '
        << operand_text(t.operand_a, true) << ' '
        << operand_text(t.operand_b, false) << ' '
        << operand_text(t.operand_b, true) << ' ';
    if (t.read_step) {
      out << *t.read_step;
    } else {
      out << '-';
    }
    out << ' ' << t.module << ' ';
    if (t.write_step) {
      out << *t.write_step;
    } else {
      out << '-';
    }
    out << ' ' << (t.write_bus ? *t.write_bus : "-") << ' '
        << (t.destination ? *t.destination : "-");
    if (t.op) {
      out << " op " << *t.op;
    }
    out << '\n';
  }
  return out.str();
}

namespace {

struct LineParser {
  std::vector<std::string> tokens;
  std::size_t next = 0;
  unsigned line = 0;
  common::DiagnosticBag* diags = nullptr;

  [[nodiscard]] bool done() const { return next >= tokens.size(); }

  std::optional<std::string> word(const char* what) {
    if (done()) {
      diags->error(std::string("missing ") + what,
                   common::SourceLocation{line, 1});
      return std::nullopt;
    }
    return tokens[next++];
  }

  std::optional<std::int64_t> number(const char* what) {
    const auto text = word(what);
    if (!text) {
      return std::nullopt;
    }
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text->data(), text->data() + text->size(), value);
    if (ec != std::errc() || ptr != text->data() + text->size()) {
      diags->error(std::string("bad ") + what + " '" + *text + "'",
                   common::SourceLocation{line, 1});
      return std::nullopt;
    }
    return value;
  }
};

std::optional<ModuleKind> kind_from(const std::string& text) {
  for (const ModuleKind kind :
       {ModuleKind::kAdd, ModuleKind::kSub, ModuleKind::kMul, ModuleKind::kAlu,
        ModuleKind::kCopy, ModuleKind::kMacc, ModuleKind::kCordic}) {
    if (to_string(kind) == text) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<OperandPath> parse_operand(const std::string& source,
                                         const std::string& bus) {
  if (source == "-" && bus == "-") {
    return std::nullopt;
  }
  Endpoint endpoint;
  if (!source.empty() && source.front() == '%') {
    endpoint = Endpoint::constant(source.substr(1));
  } else if (!source.empty() && source.front() == '$') {
    endpoint = Endpoint::input(source.substr(1));
  } else {
    endpoint = Endpoint::register_out(source);
  }
  return OperandPath{std::move(endpoint), bus};
}

}  // namespace

Design parse_design(std::string_view text, common::DiagnosticBag& diags) {
  Design design;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  unsigned line_number = 0;

  while (std::getline(stream, raw_line)) {
    ++line_number;
    // Strip comments: '#' at line start or after whitespace starts one
    // (the '%'/'$' operand sigils never collide with it).
    for (std::size_t i = 0; i < raw_line.size(); ++i) {
      if (raw_line[i] == '#' &&
          (i == 0 || raw_line[i - 1] == ' ' || raw_line[i - 1] == '\t')) {
        raw_line.resize(i);
        break;
      }
    }
    std::istringstream words(raw_line);
    LineParser lp;
    lp.line = line_number;
    lp.diags = &diags;
    std::string token;
    while (words >> token) {
      lp.tokens.push_back(token);
    }
    if (lp.tokens.empty()) {
      continue;
    }
    const std::string keyword = *lp.word("keyword");

    if (keyword == "design") {
      if (const auto name = lp.word("design name")) {
        design.name = *name;
      }
    } else if (keyword == "cs_max") {
      if (const auto n = lp.number("cs_max value")) {
        design.cs_max = static_cast<unsigned>(*n);
      }
    } else if (keyword == "register") {
      const auto name = lp.word("register name");
      if (!name) {
        continue;
      }
      RegisterDecl reg{*name, std::nullopt};
      if (!lp.done()) {
        const auto init_kw = lp.word("'init'");
        if (init_kw && *init_kw == "init") {
          reg.initial = lp.number("init value");
        } else if (init_kw) {
          diags.error("expected 'init', found '" + *init_kw + "'",
                      common::SourceLocation{line_number, 1});
        }
      }
      design.registers.push_back(std::move(reg));
    } else if (keyword == "bus") {
      if (const auto name = lp.word("bus name")) {
        design.buses.push_back({*name});
      }
    } else if (keyword == "input") {
      if (const auto name = lp.word("input name")) {
        design.inputs.push_back({*name});
      }
    } else if (keyword == "constant") {
      const auto name = lp.word("constant name");
      const auto value = lp.number("constant value");
      if (name && value) {
        design.constants.push_back({*name, *value});
      }
    } else if (keyword == "module") {
      const auto name = lp.word("module name");
      const auto kind_text = lp.word("module kind");
      if (!name || !kind_text) {
        continue;
      }
      const auto kind = kind_from(*kind_text);
      if (!kind) {
        diags.error("unknown module kind '" + *kind_text + "'",
                    common::SourceLocation{line_number, 1});
        continue;
      }
      ModuleDecl module{*name, *kind, 1, 0, 24};
      while (!lp.done()) {
        const auto option = lp.word("module option");
        if (!option) {
          break;
        }
        if (*option == "latency") {
          if (const auto n = lp.number("latency")) {
            module.latency = static_cast<unsigned>(*n);
          }
        } else if (*option == "frac") {
          if (const auto n = lp.number("frac bits")) {
            module.frac_bits = static_cast<unsigned>(*n);
          }
        } else if (*option == "iters") {
          if (const auto n = lp.number("iterations")) {
            module.iterations = static_cast<unsigned>(*n);
          }
        } else {
          diags.error("unknown module option '" + *option + "'",
                      common::SourceLocation{line_number, 1});
          break;
        }
      }
      design.modules.push_back(std::move(module));
    } else if (keyword == "transfer") {
      const auto src_a = lp.word("source A");
      const auto bus_a = lp.word("bus A");
      const auto src_b = lp.word("source B");
      const auto bus_b = lp.word("bus B");
      const auto read = lp.word("read step");
      const auto module = lp.word("module");
      const auto write = lp.word("write step");
      const auto wbus = lp.word("write bus");
      const auto dst = lp.word("destination");
      if (!src_a || !bus_a || !src_b || !bus_b || !read || !module || !write ||
          !wbus || !dst) {
        continue;
      }
      RegisterTransfer t;
      t.operand_a = parse_operand(*src_a, *bus_a);
      t.operand_b = parse_operand(*src_b, *bus_b);
      if (*read != "-") {
        t.read_step = static_cast<unsigned>(std::strtoul(read->c_str(), nullptr, 10));
      }
      t.module = *module;
      if (*write != "-") {
        t.write_step =
            static_cast<unsigned>(std::strtoul(write->c_str(), nullptr, 10));
      }
      if (*wbus != "-") {
        t.write_bus = *wbus;
      }
      if (*dst != "-") {
        t.destination = *dst;
      }
      if (!lp.done()) {
        const auto op_kw = lp.word("'op'");
        if (op_kw && *op_kw == "op") {
          t.op = lp.number("op code");
        } else if (op_kw) {
          diags.error("expected 'op', found '" + *op_kw + "'",
                      common::SourceLocation{line_number, 1});
        }
      }
      design.transfers.push_back(std::move(t));
    } else {
      diags.error("unknown keyword '" + keyword + "'",
                  common::SourceLocation{line_number, 1});
    }
    if (!lp.done()) {
      diags.error("trailing tokens after '" + keyword + "' line",
                  common::SourceLocation{line_number, 1});
    }
  }
  return design;
}

}  // namespace ctrtl::transfer
