#pragma once

#include <cstdint>
#include <deque>
#include <span>

#include "rtl/value.h"
#include "transfer/design.h"

namespace ctrtl::transfer {

/// Kernel-independent reference semantics of one functional unit, driven by
/// its `ModuleDecl`. Used by the formal reference evaluator
/// (verify::semantics) and by the clocked back end — both need module
/// behaviour without instantiating kernel processes. Mirrors `rtl::Module`
/// and its concrete subclasses exactly (operand discipline, pipeline
/// poisoning, MACC accumulator, CORDIC rotation).
class ModuleSim {
 public:
  explicit ModuleSim(const ModuleDecl& decl);

  /// Operand count the given op consumes.
  [[nodiscard]] unsigned arity_for(std::int64_t op) const;

  /// Pure combinational evaluation under the operand discipline; does not
  /// touch the pipeline (but does update MACC accumulator state).
  [[nodiscard]] rtl::RtValue evaluate(std::span<const rtl::RtValue> operands,
                                      const rtl::RtValue& op);

  /// One compute phase (`cm` in the abstract model, one clock cycle in the
  /// clocked one): evaluates, advances the pipeline, and returns the value
  /// now visible at the output port.
  rtl::RtValue step(std::span<const rtl::RtValue> operands, const rtl::RtValue& op);

  [[nodiscard]] const rtl::RtValue& out() const { return out_; }
  [[nodiscard]] bool poisoned() const { return poisoned_; }
  [[nodiscard]] const ModuleDecl& decl() const { return *decl_; }

 private:
  [[nodiscard]] std::int64_t apply(std::span<const std::int64_t> payloads,
                                   std::int64_t op);

  const ModuleDecl* decl_;
  std::deque<rtl::RtValue> pipeline_;  // front() newest; size == latency
  rtl::RtValue out_ = rtl::RtValue::disc();
  bool poisoned_ = false;
  std::int64_t acc_ = 0;
};

}  // namespace ctrtl::transfer
