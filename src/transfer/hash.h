#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "transfer/design.h"
#include "transfer/tuple.h"

namespace ctrtl::transfer {

/// Incremental FNV-1a (64-bit) hasher over typed fields. Deterministic
/// across runs, hosts, and compilers — the digest is a stable content
/// address, usable as a cache key that outlives the process (the
/// `ctrtl_serve` design cache persists keys across connections and prints
/// them on the wire). Every `update` overload feeds a length/tag-delimited
/// encoding, so adjacent fields cannot alias ("ab","c" vs "a","bc").
class StreamHasher {
 public:
  void update_bytes(const void* data, std::size_t size);
  void update(std::string_view text);   ///< length-prefixed
  void update(std::uint64_t value);     ///< fixed 8-byte little-endian
  void update(std::int64_t value);
  void update(std::uint32_t value);
  void update(std::uint8_t value);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t state_ = kOffsetBasis;
};

/// Content-hash of a design plus an explicit TRANS instance stream — the
/// cache key of the `ctrtl_serve` design cache. Covers everything that
/// determines the lowered `CompiledDesign`: every declaration (registers
/// with initial values, buses, modules with kind/latency/frac/iterations,
/// constants, external inputs), `cs_max`, the design name, and the canonical
/// TRANS stream in order (step, phase, source, sink per instance). The
/// digest is salted with a format-version tag so key semantics can evolve
/// without silently colliding across releases.
///
/// Two designs hash equal iff their declaration lists and streams render
/// identically — this is *canonical-stream* identity, not semantic
/// equivalence (reordering declarations or transfers changes the key even
/// when behaviour is preserved). Fault plans fold in by hashing the
/// *faulted* pair: `apply_plan` transforms the stream, so distinct plans
/// with identical transformed streams intentionally share a cache entry.
[[nodiscard]] std::uint64_t canonical_stream_hash(
    const Design& design, std::span<const TransInstance> instances);

/// Hash of the design's own canonical stream (the forward mapping of its
/// tuples) — what `canonical_stream_hash(design, to_instances(transfers))`
/// returns, computed without materializing the stream separately.
[[nodiscard]] std::uint64_t canonical_stream_hash(const Design& design);

/// 16 lowercase hex digits, zero-padded — the wire rendering of a key.
[[nodiscard]] std::string to_hex(std::uint64_t digest);

}  // namespace ctrtl::transfer
