#include "transfer/conflict.h"

#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "rtl/modules.h"
#include "transfer/mapping.h"

namespace ctrtl::transfer {

std::string to_string(const DriveConflict& conflict) {
  std::ostringstream out;
  out << conflict.driver_count << " transfers drive " << conflict.sink
      << " at step " << conflict.step << ", phase "
      << rtl::phase_name(conflict.drive_phase) << " (ILLEGAL visible at "
      << rtl::phase_name(conflict.visible_phase) << ")";
  return out.str();
}

std::string to_string(const DisciplineViolation& violation) {
  std::ostringstream out;
  out << "module " << violation.module << " at step " << violation.step
      << " receives " << violation.ports_driven << " of "
      << violation.ports_required << " required operands";
  return out.str();
}

namespace {

/// Required operand count for a module given the op code scheduled in a
/// step (mirrors Module::arity_for of the concrete module classes).
std::optional<unsigned> required_ports(const ModuleDecl& module,
                                       std::optional<std::int64_t> op) {
  if (!module.has_op_port()) {
    return module.num_inputs();
  }
  if (!op.has_value()) {
    // Op-port module with no op scheduled: any operand is a violation.
    return 0;
  }
  switch (module.kind) {
    case ModuleKind::kAlu: {
      static const rtl::AluModule::OpTable kOps = rtl::make_standard_alu_ops();
      const auto it = kOps.find(*op);
      if (it == kOps.end()) {
        return std::nullopt;  // unknown op: flagged by elaboration, not here
      }
      return it->second.arity;
    }
    case ModuleKind::kMacc:
      switch (*op) {
        case rtl::MaccModule::kOpClear:
        case rtl::MaccModule::kOpHold:
          return 0;
        case rtl::MaccModule::kOpLoad:
          return 1;
        case rtl::MaccModule::kOpMac:
          return 2;
        default:
          return std::nullopt;
      }
    case ModuleKind::kCordic:
      return 1;
    default:
      return module.num_inputs();
  }
}

}  // namespace

AnalysisReport analyze(const Design& design) {
  AnalysisReport report;

  // --- multi-drive conflicts -------------------------------------------------
  struct DriveKey {
    std::string sink;
    unsigned step;
    rtl::Phase phase;
    auto operator<=>(const DriveKey&) const = default;
  };
  std::map<DriveKey, unsigned> drive_counts;
  for (const TransInstance& instance : to_instances(design.transfers)) {
    ++drive_counts[DriveKey{to_string(instance.sink), instance.step, instance.phase}];
  }
  for (const auto& [key, count] : drive_counts) {
    if (count >= 2) {
      report.drive_conflicts.push_back(DriveConflict{
          key.sink, key.step, key.phase, rtl::succ(key.phase), count});
    }
  }

  // --- operand discipline ----------------------------------------------------
  struct ModuleStep {
    std::string module;
    unsigned step;
    auto operator<=>(const ModuleStep&) const = default;
  };
  struct Usage {
    std::set<unsigned> ports;
    std::optional<std::int64_t> op;
  };
  std::map<ModuleStep, Usage> usage;
  for (const RegisterTransfer& transfer : design.transfers) {
    if (!transfer.read_step.has_value()) {
      continue;
    }
    Usage& u = usage[ModuleStep{transfer.module, *transfer.read_step}];
    if (transfer.operand_a) {
      u.ports.insert(0);
    }
    if (transfer.operand_b) {
      u.ports.insert(1);
    }
    if (transfer.op) {
      u.op = transfer.op;
    }
  }
  for (const auto& [key, u] : usage) {
    const ModuleDecl* module = design.find_module(key.module);
    if (module == nullptr) {
      continue;  // validate() reports this
    }
    const std::optional<unsigned> required = required_ports(*module, u.op);
    if (!required.has_value()) {
      continue;
    }
    const unsigned driven = static_cast<unsigned>(u.ports.size());
    const bool idle_ok = driven == 0 && !u.op.has_value();
    if (!idle_ok && driven != *required) {
      report.discipline_violations.push_back(
          DisciplineViolation{key.module, key.step, driven, *required});
    }
  }
  return report;
}

}  // namespace ctrtl::transfer
