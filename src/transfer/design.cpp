#include "transfer/design.h"

#include <algorithm>
#include <set>

namespace ctrtl::transfer {

std::string to_string(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kAdd:
      return "add";
    case ModuleKind::kSub:
      return "sub";
    case ModuleKind::kMul:
      return "mul";
    case ModuleKind::kAlu:
      return "alu";
    case ModuleKind::kCopy:
      return "copy";
    case ModuleKind::kMacc:
      return "macc";
    case ModuleKind::kCordic:
      return "cordic";
  }
  return "<corrupt>";
}

unsigned ModuleDecl::num_inputs() const {
  switch (kind) {
    case ModuleKind::kCopy:
    case ModuleKind::kCordic:
      return 1;
    default:
      return 2;
  }
}

bool ModuleDecl::has_op_port() const {
  switch (kind) {
    case ModuleKind::kAlu:
    case ModuleKind::kMacc:
    case ModuleKind::kCordic:
      return true;
    default:
      return false;
  }
}

namespace {

template <typename Decl>
const Decl* find_by_name(const std::vector<Decl>& decls, const std::string& name) {
  const auto it = std::find_if(decls.begin(), decls.end(),
                               [&](const Decl& d) { return d.name == name; });
  return it == decls.end() ? nullptr : &*it;
}

}  // namespace

const ModuleDecl* Design::find_module(const std::string& name) const {
  return find_by_name(modules, name);
}

const RegisterDecl* Design::find_register(const std::string& name) const {
  return find_by_name(registers, name);
}

bool Design::has_bus(const std::string& name) const {
  return find_by_name(buses, name) != nullptr;
}

const ConstantDecl* Design::find_constant(const std::string& name) const {
  return find_by_name(constants, name);
}

bool Design::has_input(const std::string& name) const {
  return find_by_name(inputs, name) != nullptr;
}

namespace {

void check_operand_source(const Design& design, const Endpoint& source,
                          const std::string& context, common::DiagnosticBag& diags) {
  switch (source.kind) {
    case Endpoint::Kind::kRegisterOut:
      if (design.find_register(source.resource) == nullptr) {
        diags.error(context + ": undeclared register '" + source.resource + "'");
      }
      break;
    case Endpoint::Kind::kConstant:
      if (design.find_constant(source.resource) == nullptr) {
        diags.error(context + ": undeclared constant '" + source.resource + "'");
      }
      break;
    case Endpoint::Kind::kInput:
      if (!design.has_input(source.resource)) {
        diags.error(context + ": undeclared input '" + source.resource + "'");
      }
      break;
    default:
      diags.error(context + ": operand source must be a register, constant, or input");
      break;
  }
}

template <typename Decl>
void check_unique_names(const std::vector<Decl>& decls, const char* what,
                        std::set<std::string>& all_names,
                        common::DiagnosticBag& diags) {
  for (const Decl& decl : decls) {
    if (decl.name.empty()) {
      diags.error(std::string(what) + " with empty name");
      continue;
    }
    if (!all_names.insert(decl.name).second) {
      diags.error("duplicate resource name '" + decl.name + "'");
    }
  }
}

}  // namespace

bool validate(const Design& design, common::DiagnosticBag& diags) {
  if (design.cs_max == 0) {
    diags.error("cs_max must be at least 1");
  }

  std::set<std::string> names;
  check_unique_names(design.registers, "register", names, diags);
  check_unique_names(design.buses, "bus", names, diags);
  check_unique_names(design.modules, "module", names, diags);
  check_unique_names(design.constants, "constant", names, diags);
  check_unique_names(design.inputs, "input", names, diags);

  for (std::size_t i = 0; i < design.transfers.size(); ++i) {
    const RegisterTransfer& t = design.transfers[i];
    const std::string context = "transfer " + std::to_string(i) + " " + to_string(t);

    const ModuleDecl* module = nullptr;
    if (t.module.empty()) {
      diags.error(context + ": missing module");
    } else {
      module = design.find_module(t.module);
      if (module == nullptr) {
        diags.error(context + ": undeclared module '" + t.module + "'");
      }
    }

    const bool has_read = t.operand_a.has_value() || t.operand_b.has_value();
    if (has_read && !t.read_step.has_value()) {
      diags.error(context + ": operands given but no read step");
    }
    if (t.read_step && (*t.read_step == 0 || *t.read_step > design.cs_max)) {
      diags.error(context + ": read step outside 1..cs_max");
    }
    if (t.write_step && (*t.write_step == 0 || *t.write_step > design.cs_max)) {
      diags.error(context + ": write step outside 1..cs_max");
    }

    for (const auto* operand : {&t.operand_a, &t.operand_b}) {
      if (!operand->has_value()) {
        continue;
      }
      check_operand_source(design, (*operand)->source, context, diags);
      if (!design.has_bus((*operand)->bus)) {
        diags.error(context + ": undeclared bus '" + (*operand)->bus + "'");
      }
    }
    if (t.operand_b.has_value() && module != nullptr && module->num_inputs() < 2) {
      diags.error(context + ": module '" + t.module + "' has no second input port");
    }

    const bool has_write =
        t.write_step.has_value() || t.write_bus.has_value() || t.destination.has_value();
    if (has_write) {
      if (!t.write_step || !t.write_bus || !t.destination) {
        diags.error(context + ": write side must give step, bus, and destination");
      } else {
        if (!design.has_bus(*t.write_bus)) {
          diags.error(context + ": undeclared bus '" + *t.write_bus + "'");
        }
        if (design.find_register(*t.destination) == nullptr) {
          diags.error(context + ": undeclared destination register '" +
                      *t.destination + "'");
        }
      }
    }

    if (module != nullptr) {
      if (t.op.has_value() && !module->has_op_port()) {
        diags.error(context + ": op code on module '" + t.module +
                    "' which has no operation port");
      }
      if (!t.op.has_value() && module->has_op_port() && has_read) {
        diags.error(context + ": module '" + t.module +
                    "' requires an op code for operand transfers");
      }
      if (t.read_step && t.write_step &&
          *t.write_step != *t.read_step + module->latency) {
        diags.error(context + ": write step " + std::to_string(*t.write_step) +
                    " does not match read step + latency (" +
                    std::to_string(*t.read_step + module->latency) + ")");
      }
    }

    // An op code alone is a valid transfer (it moves the op constant to the
    // module's operation port, e.g. a MACC clear).
    if (!has_read && !has_write && !t.op.has_value()) {
      diags.error(context + ": transfer moves nothing");
    }
  }
  return !diags.has_errors();
}

}  // namespace ctrtl::transfer
