#pragma once

#include <memory>
#include <span>

#include "rtl/model.h"
#include "transfer/design.h"
#include "transfer/schedule.h"

namespace ctrtl::transfer {

/// Elaborates a `Design` into an executable `rtl::RtModel`:
/// resources become Register/Module/bus objects, each 9-tuple expands into
/// its TRANS instances (the paper's forward mapping), and op codes become
/// implicit constant sources feeding module operation ports.
///
/// Throws `std::invalid_argument` (with the full diagnostic text) when the
/// design does not validate. `mode` selects the transfer execution scheme:
/// paper-faithful TRANS processes, the indexed dispatcher ablation, or the
/// compiled static-schedule engine (`rtl::TransferMode::kCompiled`, lowered
/// through `transfer::lower_schedule` — see transfer/schedule.h).
[[nodiscard]] std::unique_ptr<rtl::RtModel> build_model(
    const Design& design,
    rtl::TransferMode mode = rtl::TransferMode::kProcessPerTransfer);

/// Elaborates `design`'s resources but instantiates the explicit TRANS
/// `instances` stream instead of expanding the design's own tuples — the
/// fault-injection path (`fault::apply_plan` transforms the canonical
/// stream). The op-code constants still derive from the design's tuples, so
/// op-port instances resolve regardless of how the stream was transformed.
/// Stream order is the spawn order (and intra-level lowering order in
/// compiled mode), preserving engine parity for any transformed stream.
[[nodiscard]] std::unique_ptr<rtl::RtModel> build_model(
    const Design& design, std::span<const TransInstance> instances,
    rtl::TransferMode mode = rtl::TransferMode::kProcessPerTransfer);

/// Elaborates from an already-lowered design: the `StaticSchedule` inside
/// `compiled` is reused read-only instead of re-running `lower_schedule`, so
/// batch elaboration of N compiled-mode instances lowers once, not N times
/// (the schedule is immutable and safely shared across threads). The
/// non-compiled modes ignore the schedule and elaborate from the tuples.
[[nodiscard]] std::unique_ptr<rtl::RtModel> build_model(
    const CompiledDesign& compiled,
    rtl::TransferMode mode = rtl::TransferMode::kCompiled);

/// Resolves a symbolic endpoint to its signal in an elaborated model.
/// Throws `std::invalid_argument` when the endpoint names nothing.
[[nodiscard]] rtl::RtSignal& endpoint_signal(rtl::RtModel& model,
                                             const Endpoint& endpoint);

/// The per-module latency map of a design (used by `merge_partials` and the
/// clocked back end).
[[nodiscard]] std::map<std::string, unsigned> latency_map(const Design& design);

}  // namespace ctrtl::transfer
