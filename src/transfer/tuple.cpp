#include "transfer/tuple.h"

#include <sstream>
#include <stdexcept>

namespace ctrtl::transfer {

Endpoint Endpoint::register_out(std::string name) {
  return {Kind::kRegisterOut, std::move(name), 0};
}
Endpoint Endpoint::register_in(std::string name) {
  return {Kind::kRegisterIn, std::move(name), 0};
}
Endpoint Endpoint::module_out(std::string name) {
  return {Kind::kModuleOut, std::move(name), 0};
}
Endpoint Endpoint::module_in(std::string name, unsigned port) {
  return {Kind::kModuleIn, std::move(name), port};
}
Endpoint Endpoint::module_op(std::string name) {
  return {Kind::kModuleOp, std::move(name), 0};
}
Endpoint Endpoint::bus(std::string name) {
  return {Kind::kBus, std::move(name), 0};
}
Endpoint Endpoint::constant(std::string name) {
  return {Kind::kConstant, std::move(name), 0};
}
Endpoint Endpoint::input(std::string name) {
  return {Kind::kInput, std::move(name), 0};
}

std::string to_string(const Endpoint& endpoint) {
  switch (endpoint.kind) {
    case Endpoint::Kind::kRegisterOut:
      return endpoint.resource + ".out";
    case Endpoint::Kind::kRegisterIn:
      return endpoint.resource + ".in";
    case Endpoint::Kind::kModuleOut:
      return endpoint.resource + ".mout";
    case Endpoint::Kind::kModuleIn:
      return endpoint.resource + ".in" + std::to_string(endpoint.port + 1);
    case Endpoint::Kind::kModuleOp:
      return endpoint.resource + ".op";
    case Endpoint::Kind::kBus:
      return endpoint.resource;
    case Endpoint::Kind::kConstant:
      return "#" + endpoint.resource;
    case Endpoint::Kind::kInput:
      return "$" + endpoint.resource;
  }
  throw std::logic_error("Endpoint: corrupt kind");
}

Endpoint parse_endpoint(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("empty endpoint");
  }
  if (text.front() == '#') {
    return Endpoint::constant(text.substr(1));
  }
  if (text.front() == '$') {
    return Endpoint::input(text.substr(1));
  }
  const std::size_t dot = text.rfind('.');
  if (dot == std::string::npos) {
    return Endpoint::bus(text);
  }
  const std::string resource = text.substr(0, dot);
  const std::string suffix = text.substr(dot + 1);
  if (resource.empty() || suffix.empty()) {
    throw std::invalid_argument("malformed endpoint '" + text + "'");
  }
  if (suffix == "out") {
    return Endpoint::register_out(resource);
  }
  if (suffix == "in") {
    return Endpoint::register_in(resource);
  }
  if (suffix == "mout") {
    return Endpoint::module_out(resource);
  }
  if (suffix == "op") {
    return Endpoint::module_op(resource);
  }
  if (suffix.size() >= 3 && suffix.compare(0, 2, "in") == 0) {
    const int port = std::stoi(suffix.substr(2));
    if (port < 1) {
      throw std::invalid_argument("module port index must be >= 1 in '" + text + "'");
    }
    return Endpoint::module_in(resource, static_cast<unsigned>(port - 1));
  }
  throw std::invalid_argument("unknown endpoint suffix '" + suffix + "'");
}

bool RegisterTransfer::complete() const {
  return operand_a.has_value() && operand_b.has_value() && read_step.has_value() &&
         !module.empty() && write_step.has_value() && write_bus.has_value() &&
         destination.has_value();
}

RegisterTransfer RegisterTransfer::full(std::string src_a, std::string bus_a,
                                        std::string src_b, std::string bus_b,
                                        unsigned read_step, std::string module,
                                        unsigned write_step, std::string write_bus,
                                        std::string destination,
                                        std::optional<std::int64_t> op) {
  RegisterTransfer t;
  t.operand_a = OperandPath{Endpoint::register_out(std::move(src_a)), std::move(bus_a)};
  t.operand_b = OperandPath{Endpoint::register_out(std::move(src_b)), std::move(bus_b)};
  t.read_step = read_step;
  t.module = std::move(module);
  t.write_step = write_step;
  t.write_bus = std::move(write_bus);
  t.destination = std::move(destination);
  t.op = op;
  return t;
}

namespace {

std::string operand_source_text(const OperandPath& path) {
  // Registers print bare (the paper's tuples name registers directly);
  // constants and inputs keep their sigil.
  if (path.source.kind == Endpoint::Kind::kRegisterOut) {
    return path.source.resource;
  }
  return to_string(path.source);
}

}  // namespace

std::string to_string(const RegisterTransfer& transfer) {
  std::ostringstream out;
  out << '(';
  out << (transfer.operand_a ? operand_source_text(*transfer.operand_a) : "-") << ',';
  out << (transfer.operand_a ? transfer.operand_a->bus : "-") << ',';
  out << (transfer.operand_b ? operand_source_text(*transfer.operand_b) : "-") << ',';
  out << (transfer.operand_b ? transfer.operand_b->bus : "-") << ',';
  if (transfer.read_step) {
    out << *transfer.read_step;
  } else {
    out << '-';
  }
  out << ',' << (transfer.module.empty() ? "-" : transfer.module) << ',';
  if (transfer.write_step) {
    out << *transfer.write_step;
  } else {
    out << '-';
  }
  out << ',' << (transfer.write_bus ? *transfer.write_bus : "-") << ',';
  out << (transfer.destination ? *transfer.destination : "-");
  out << ')';
  if (transfer.op) {
    out << "|op=" << *transfer.op;
  }
  return out.str();
}

std::string TransInstance::name() const {
  std::string source_text = to_string(source);
  std::string sink_text = to_string(sink);
  for (std::string* text : {&source_text, &sink_text}) {
    for (char& c : *text) {
      if (c == '.' || c == '#' || c == '$') {
        c = '_';
      }
    }
  }
  return source_text + "_" + sink_text + "_" + std::to_string(step);
}

std::string to_string(const TransInstance& instance) {
  std::ostringstream out;
  out << "TRANS(" << instance.step << "," << rtl::phase_name(instance.phase) << ") "
      << to_string(instance.source) << " -> " << to_string(instance.sink);
  return out.str();
}

}  // namespace ctrtl::transfer
