#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtl/phase.h"

namespace ctrtl::transfer {

/// A structural endpoint of a transfer: a port of a functional unit, a bus,
/// or a literal/constant source.
struct Endpoint {
  enum class Kind : std::uint8_t {
    kRegisterOut,
    kRegisterIn,
    kModuleOut,
    kModuleIn,
    kModuleOp,
    kBus,
    kConstant,
    kInput,
  };

  Kind kind = Kind::kBus;
  std::string resource;
  unsigned port = 0;  // module input index (0-based) for kModuleIn

  [[nodiscard]] static Endpoint register_out(std::string name);
  [[nodiscard]] static Endpoint register_in(std::string name);
  [[nodiscard]] static Endpoint module_out(std::string name);
  [[nodiscard]] static Endpoint module_in(std::string name, unsigned port);
  [[nodiscard]] static Endpoint module_op(std::string name);
  [[nodiscard]] static Endpoint bus(std::string name);
  [[nodiscard]] static Endpoint constant(std::string name);
  [[nodiscard]] static Endpoint input(std::string name);

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

/// "R1.out", "ADD.in1", "ADD.op", "B1", "#k0" (constant), "$x_in" (input).
[[nodiscard]] std::string to_string(const Endpoint& endpoint);

/// Inverse of `to_string`. Throws std::invalid_argument on malformed text.
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

/// One operand path of a register transfer: a source feeding one module
/// input via a bus.
struct OperandPath {
  /// Source of the operand: usually a register output; constants and
  /// external inputs are allowed (IKS literal operands).
  Endpoint source;
  std::string bus;

  friend bool operator==(const OperandPath&, const OperandPath&) = default;
};

/// The paper's 9-tuple denoting one register transfer (section 2.1):
///
///   (R1, B1, R2, B2, 5, ADD, 6, B1, R1)
///
/// "In control step 5 the value at the output port of register R1 is
/// transferred to the left input port of the module ADD via bus B1, ...;
/// in control step 6 the value of the output port of ADD is transferred to
/// the input port of register R1 via bus B1."
///
/// Fields are optional because the paper's *reverse* mapping (TRANS
/// instances back to tuples) produces partial tuples with '-' entries.
/// The optional `op` field is the section 3 extension: the operation the
/// module performs during this transfer.
struct RegisterTransfer {
  std::optional<OperandPath> operand_a;
  std::optional<OperandPath> operand_b;
  std::optional<unsigned> read_step;
  std::string module;
  std::optional<unsigned> write_step;
  std::optional<std::string> write_bus;
  std::optional<std::string> destination;  // register name
  std::optional<std::int64_t> op;

  /// True when every positional field of the 9-tuple is present.
  [[nodiscard]] bool complete() const;

  /// Convenience builder for the common full tuple.
  [[nodiscard]] static RegisterTransfer full(
      std::string src_a, std::string bus_a, std::string src_b, std::string bus_b,
      unsigned read_step, std::string module, unsigned write_step,
      std::string write_bus, std::string destination,
      std::optional<std::int64_t> op = std::nullopt);

  friend bool operator==(const RegisterTransfer&, const RegisterTransfer&) = default;
};

/// "(R1,B1,R2,B2,5,ADD,6,B1,R1)"; missing entries print as '-', the op
/// extension (when present) appends "|op=N".
[[nodiscard]] std::string to_string(const RegisterTransfer& transfer);

/// One TRANS process instance in symbolic form (before elaboration).
struct TransInstance {
  unsigned step = 0;
  rtl::Phase phase = rtl::Phase::kRa;
  Endpoint source;
  Endpoint sink;

  /// "R1_out_B1_5" — the paper's instance-naming scheme.
  [[nodiscard]] std::string name() const;

  friend bool operator==(const TransInstance&, const TransInstance&) = default;
  friend auto operator<=>(const TransInstance&, const TransInstance&) = default;
};

[[nodiscard]] std::string to_string(const TransInstance& instance);

}  // namespace ctrtl::transfer
