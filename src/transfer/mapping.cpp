#include "transfer/mapping.h"

#include <algorithm>
#include <optional>

namespace ctrtl::transfer {

std::string op_constant_name(std::int64_t code) {
  return "op" + std::to_string(code);
}

bool parse_op_constant_name(const std::string& name, std::int64_t& code) {
  if (name.size() < 3 || name.compare(0, 2, "op") != 0) {
    return false;
  }
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(name.substr(2), &consumed);
    if (consumed != name.size() - 2) {
      return false;
    }
    code = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<TransInstance> to_instances(const RegisterTransfer& transfer) {
  std::vector<TransInstance> instances;
  const auto add_operand = [&](const OperandPath& path, unsigned port) {
    instances.push_back(TransInstance{*transfer.read_step, rtl::Phase::kRa,
                                      path.source, Endpoint::bus(path.bus)});
    instances.push_back(TransInstance{*transfer.read_step, rtl::Phase::kRb,
                                      Endpoint::bus(path.bus),
                                      Endpoint::module_in(transfer.module, port)});
  };
  if (transfer.operand_a) {
    add_operand(*transfer.operand_a, 0);
  }
  if (transfer.operand_b) {
    add_operand(*transfer.operand_b, 1);
  }
  if (transfer.op && transfer.read_step) {
    instances.push_back(TransInstance{*transfer.read_step, rtl::Phase::kRb,
                                      Endpoint::constant(op_constant_name(*transfer.op)),
                                      Endpoint::module_op(transfer.module)});
  }
  if (transfer.write_step && transfer.write_bus && transfer.destination) {
    instances.push_back(TransInstance{*transfer.write_step, rtl::Phase::kWa,
                                      Endpoint::module_out(transfer.module),
                                      Endpoint::bus(*transfer.write_bus)});
    instances.push_back(TransInstance{*transfer.write_step, rtl::Phase::kWb,
                                      Endpoint::bus(*transfer.write_bus),
                                      Endpoint::register_in(*transfer.destination)});
  }
  return instances;
}

std::vector<TransInstance> to_instances(std::span<const RegisterTransfer> transfers) {
  std::vector<TransInstance> instances;
  for (const RegisterTransfer& transfer : transfers) {
    const std::vector<TransInstance> expanded = to_instances(transfer);
    instances.insert(instances.end(), expanded.begin(), expanded.end());
  }
  return instances;
}

namespace {

using StepBus = std::pair<unsigned, std::string>;

}  // namespace

std::vector<RegisterTransfer> to_partial_tuples(
    std::span<const TransInstance> instances, std::vector<TransInstance>* orphans) {
  // Index the bus-driving halves by (step, bus).
  std::multimap<StepBus, const TransInstance*> ra_by_bus;   // source -> bus
  std::multimap<StepBus, const TransInstance*> wa_by_bus;   // module.out -> bus
  std::vector<const TransInstance*> rb_list;                // bus -> module port/op
  std::vector<const TransInstance*> wb_list;                // bus -> register
  std::vector<bool> used(instances.size(), false);
  std::map<const TransInstance*, std::size_t> index_of;

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const TransInstance& inst = instances[i];
    index_of[&inst] = i;
    switch (inst.phase) {
      case rtl::Phase::kRa:
        if (inst.sink.kind == Endpoint::Kind::kBus) {
          ra_by_bus.emplace(StepBus{inst.step, inst.sink.resource}, &inst);
        }
        break;
      case rtl::Phase::kRb:
        if (inst.source.kind == Endpoint::Kind::kBus ||
            inst.source.kind == Endpoint::Kind::kConstant) {
          rb_list.push_back(&inst);
        }
        break;
      case rtl::Phase::kWa:
        if (inst.sink.kind == Endpoint::Kind::kBus) {
          wa_by_bus.emplace(StepBus{inst.step, inst.sink.resource}, &inst);
        }
        break;
      case rtl::Phase::kWb:
        if (inst.source.kind == Endpoint::Kind::kBus) {
          wb_list.push_back(&inst);
        }
        break;
      default:
        break;
    }
  }

  std::vector<RegisterTransfer> partials;

  // (ra, rb) pairs: operand paths. An rb whose source is an op constant
  // becomes an op-only partial directly.
  for (const TransInstance* rb : rb_list) {
    if (rb->sink.kind == Endpoint::Kind::kModuleOp) {
      std::int64_t code = 0;
      if (rb->source.kind == Endpoint::Kind::kConstant &&
          parse_op_constant_name(rb->source.resource, code)) {
        RegisterTransfer partial;
        partial.module = rb->sink.resource;
        partial.read_step = rb->step;
        partial.op = code;
        partials.push_back(std::move(partial));
        used[index_of[rb]] = true;
      }
      continue;
    }
    if (rb->sink.kind != Endpoint::Kind::kModuleIn) {
      continue;
    }
    const auto [begin, end] =
        ra_by_bus.equal_range(StepBus{rb->step, rb->source.resource});
    for (auto it = begin; it != end; ++it) {
      const TransInstance* ra = it->second;
      RegisterTransfer partial;
      OperandPath path{ra->source, rb->source.resource};
      if (rb->sink.port == 0) {
        partial.operand_a = std::move(path);
      } else {
        partial.operand_b = std::move(path);
      }
      partial.read_step = rb->step;
      partial.module = rb->sink.resource;
      partials.push_back(std::move(partial));
      used[index_of[ra]] = true;
      used[index_of[rb]] = true;
    }
  }

  // (wa, wb) pairs: result paths.
  for (const TransInstance* wb : wb_list) {
    if (wb->sink.kind != Endpoint::Kind::kRegisterIn) {
      continue;
    }
    const auto [begin, end] =
        wa_by_bus.equal_range(StepBus{wb->step, wb->source.resource});
    for (auto it = begin; it != end; ++it) {
      const TransInstance* wa = it->second;
      RegisterTransfer partial;
      partial.module = wa->source.resource;
      partial.write_step = wb->step;
      partial.write_bus = wb->source.resource;
      partial.destination = wb->sink.resource;
      partials.push_back(std::move(partial));
      used[index_of[wa]] = true;
      used[index_of[wb]] = true;
    }
  }

  if (orphans != nullptr) {
    orphans->clear();
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (!used[i]) {
        orphans->push_back(instances[i]);
      }
    }
  }
  return partials;
}

namespace {

/// Merges `from` into `into` when their operand/op fields do not collide.
bool try_merge_read(RegisterTransfer& into, const RegisterTransfer& from) {
  if (from.operand_a && into.operand_a) {
    return false;
  }
  if (from.operand_b && into.operand_b) {
    return false;
  }
  if (from.op && into.op && *from.op != *into.op) {
    return false;
  }
  if (from.operand_a) {
    into.operand_a = from.operand_a;
  }
  if (from.operand_b) {
    into.operand_b = from.operand_b;
  }
  if (from.op) {
    into.op = from.op;
  }
  return true;
}

bool is_read_partial(const RegisterTransfer& t) {
  return t.read_step.has_value() && !t.write_step.has_value();
}

bool is_write_partial(const RegisterTransfer& t) {
  return t.write_step.has_value() && !t.read_step.has_value();
}

}  // namespace

std::vector<RegisterTransfer> merge_partials(
    std::vector<RegisterTransfer> partials,
    const std::map<std::string, unsigned>& module_latency) {
  // Phase 1: merge read partials per (module, read step).
  std::vector<RegisterTransfer> reads;
  std::vector<RegisterTransfer> writes;
  std::vector<RegisterTransfer> rest;
  for (RegisterTransfer& partial : partials) {
    if (is_read_partial(partial)) {
      bool merged = false;
      for (RegisterTransfer& read : reads) {
        if (read.module == partial.module && read.read_step == partial.read_step &&
            try_merge_read(read, partial)) {
          merged = true;
          break;
        }
      }
      if (!merged) {
        reads.push_back(std::move(partial));
      }
    } else if (is_write_partial(partial)) {
      writes.push_back(std::move(partial));
    } else {
      rest.push_back(std::move(partial));
    }
  }

  // Phase 2: fuse each write partial with the unique matching read partial.
  std::vector<bool> read_used(reads.size(), false);
  std::vector<RegisterTransfer> result;
  for (RegisterTransfer& write : writes) {
    const auto latency_it = module_latency.find(write.module);
    std::optional<std::size_t> match;
    if (latency_it != module_latency.end() &&
        *write.write_step >= latency_it->second + 1) {
      const unsigned wanted_read = *write.write_step - latency_it->second;
      for (std::size_t i = 0; i < reads.size(); ++i) {
        if (read_used[i] || reads[i].module != write.module ||
            reads[i].read_step != wanted_read) {
          continue;
        }
        if (match.has_value()) {
          match.reset();  // ambiguous; keep both partial
          break;
        }
        match = i;
      }
    }
    if (match.has_value()) {
      RegisterTransfer fused = reads[*match];
      fused.write_step = write.write_step;
      fused.write_bus = write.write_bus;
      fused.destination = write.destination;
      read_used[*match] = true;
      result.push_back(std::move(fused));
    } else {
      result.push_back(std::move(write));
    }
  }
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (!read_used[i]) {
      result.push_back(std::move(reads[i]));
    }
  }
  result.insert(result.end(), rest.begin(), rest.end());
  return result;
}

}  // namespace ctrtl::transfer
