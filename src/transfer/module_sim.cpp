#include "transfer/module_sim.h"

#include <stdexcept>
#include <vector>

#include "rtl/modules.h"

namespace ctrtl::transfer {

using rtl::RtValue;

ModuleSim::ModuleSim(const ModuleDecl& decl) : decl_(&decl) {
  pipeline_.assign(decl.latency, RtValue::disc());
}

unsigned ModuleSim::arity_for(std::int64_t op) const {
  switch (decl_->kind) {
    case ModuleKind::kAlu: {
      static const rtl::AluModule::OpTable kOps = rtl::make_standard_alu_ops();
      const auto it = kOps.find(op);
      if (it == kOps.end()) {
        throw std::domain_error("ModuleSim: unknown ALU op " + std::to_string(op));
      }
      return it->second.arity;
    }
    case ModuleKind::kMacc:
      switch (op) {
        case rtl::MaccModule::kOpClear:
        case rtl::MaccModule::kOpHold:
          return 0;
        case rtl::MaccModule::kOpLoad:
          return 1;
        case rtl::MaccModule::kOpMac:
          return 2;
        default:
          throw std::domain_error("ModuleSim: unknown MACC op " +
                                  std::to_string(op));
      }
    case ModuleKind::kCordic:
      return 1;
    default:
      return decl_->num_inputs();
  }
}

std::int64_t ModuleSim::apply(std::span<const std::int64_t> v, std::int64_t op) {
  switch (decl_->kind) {
    case ModuleKind::kAdd:
      return v[0] + v[1];
    case ModuleKind::kSub:
      return v[0] - v[1];
    case ModuleKind::kMul:
      return rtl::fixed_mul(v[0], v[1], decl_->frac_bits);
    case ModuleKind::kCopy:
      return v[0];
    case ModuleKind::kAlu: {
      static const rtl::AluModule::OpTable kOps = rtl::make_standard_alu_ops();
      return kOps.at(op).function(v);
    }
    case ModuleKind::kMacc:
      switch (op) {
        case rtl::MaccModule::kOpClear:
          acc_ = 0;
          break;
        case rtl::MaccModule::kOpHold:
          break;
        case rtl::MaccModule::kOpLoad:
          acc_ = v[0];
          break;
        default:
          acc_ += rtl::fixed_mul(v[0], v[1], decl_->frac_bits);
          break;
      }
      return acc_;
    case ModuleKind::kCordic: {
      const auto result =
          rtl::CordicModule::rotate(v[0], decl_->frac_bits, decl_->iterations);
      return op == rtl::CordicModule::kOpSin ? result.sin : result.cos;
    }
  }
  throw std::logic_error("ModuleSim: corrupt module kind");
}

RtValue ModuleSim::evaluate(std::span<const RtValue> operands, const RtValue& op) {
  for (const RtValue& operand : operands) {
    if (operand.is_illegal()) {
      return RtValue::illegal();
    }
  }
  const bool has_op = decl_->has_op_port();
  std::int64_t op_payload = 0;
  unsigned arity = decl_->num_inputs();
  if (has_op) {
    if (op.is_illegal()) {
      return RtValue::illegal();
    }
    if (op.is_disc()) {
      for (const RtValue& operand : operands) {
        if (!operand.is_disc()) {
          return RtValue::illegal();
        }
      }
      // MACC holds its accumulator when idle.
      return decl_->kind == ModuleKind::kMacc ? RtValue::of(acc_)
                                              : RtValue::disc();
    }
    op_payload = op.payload();
    arity = arity_for(op_payload);
  }
  unsigned present = 0;
  for (unsigned i = 0; i < arity && i < operands.size(); ++i) {
    if (operands[i].has_value()) {
      ++present;
    }
  }
  if (present == 0 && !has_op) {
    return RtValue::disc();
  }
  if (present != arity) {
    return RtValue::illegal();
  }
  std::vector<std::int64_t> payloads;
  payloads.reserve(arity);
  for (unsigned i = 0; i < arity && i < operands.size(); ++i) {
    payloads.push_back(operands[i].payload());
  }
  return RtValue::of(apply(payloads, op_payload));
}

RtValue ModuleSim::step(std::span<const RtValue> operands, const RtValue& op) {
  if (decl_->latency == 0) {
    out_ = evaluate(operands, op);
    return out_;
  }
  out_ = pipeline_.back();
  const RtValue next = poisoned_ ? RtValue::illegal() : evaluate(operands, op);
  pipeline_.pop_back();
  pipeline_.push_front(next);
  if (next.is_illegal()) {
    poisoned_ = true;
  }
  return out_;
}

}  // namespace ctrtl::transfer
