#include "transfer/schedule.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "transfer/mapping.h"

namespace ctrtl::transfer {

namespace {

/// Producer->consumer dependency order over the design's modules: module A
/// precedes module B when A's result (directly, or through its destination
/// register) feeds one of B's operand paths. Kahn's algorithm with
/// declaration order as the tie-break; cycles (register feedback, e.g. an
/// accumulator reading its own destination) are broken by emitting the
/// remaining modules in declaration order.
std::vector<std::string> levelize_modules(const Design& design) {
  const std::size_t n = design.modules.size();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) {
    index[design.modules[i].name] = i;
  }

  // Which module writes each register (the last writer wins is irrelevant
  // for ordering; collect all writers).
  std::multimap<std::string, std::size_t> register_writers;
  for (const RegisterTransfer& transfer : design.transfers) {
    const auto it = index.find(transfer.module);
    if (it != index.end() && transfer.destination) {
      register_writers.emplace(*transfer.destination, it->second);
    }
  }

  std::vector<std::set<std::size_t>> successors(n);
  std::vector<std::size_t> indegree(n, 0);
  const auto add_edge = [&](std::size_t from, std::size_t to) {
    if (from != to && successors[from].insert(to).second) {
      ++indegree[to];
    }
  };
  for (const RegisterTransfer& transfer : design.transfers) {
    const auto consumer = index.find(transfer.module);
    if (consumer == index.end()) {
      continue;
    }
    for (const std::optional<OperandPath>& operand :
         {transfer.operand_a, transfer.operand_b}) {
      if (!operand) {
        continue;
      }
      if (operand->source.kind == Endpoint::Kind::kModuleOut) {
        const auto producer = index.find(operand->source.resource);
        if (producer != index.end()) {
          add_edge(producer->second, consumer->second);
        }
      } else if (operand->source.kind == Endpoint::Kind::kRegisterOut) {
        const auto [first, last] =
            register_writers.equal_range(operand->source.resource);
        for (auto it = first; it != last; ++it) {
          add_edge(it->second, consumer->second);
        }
      }
    }
  }

  std::vector<std::string> order;
  order.reserve(n);
  std::vector<bool> emitted(n, false);
  for (std::size_t remaining = n; remaining > 0;) {
    // Smallest-index ready module; falls back to the smallest-index
    // not-yet-emitted module when only cycles remain.
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!emitted[i] && indegree[i] == 0) {
        pick = i;
        break;
      }
    }
    if (pick == n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!emitted[i]) {
          pick = i;
          break;
        }
      }
    }
    emitted[pick] = true;
    order.push_back(design.modules[pick].name);
    for (const std::size_t next : successors[pick]) {
      if (indegree[next] > 0) {
        --indegree[next];
      }
    }
    --remaining;
  }
  return order;
}

}  // namespace

const ScheduleLevel* StaticSchedule::level(unsigned step, rtl::Phase phase) const {
  if (step == 0 || step > cs_max) {
    return nullptr;
  }
  const std::size_t ordinal =
      (static_cast<std::size_t>(step) - 1) * rtl::kPhasesPerStep +
      static_cast<std::size_t>(rtl::phase_index(phase));
  return ordinal < levels.size() ? &levels[ordinal] : nullptr;
}

StaticSchedule lower_schedule(const Design& design) {
  return lower_schedule(design, to_instances(design.transfers));
}

StaticSchedule lower_schedule(const Design& design,
                              std::vector<TransInstance> instances) {
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("design '" + design.name +
                                "' does not validate:\n" + diags.to_text());
  }

  StaticSchedule schedule;
  schedule.design_name = design.name;
  schedule.cs_max = design.cs_max;
  schedule.levels.resize(static_cast<std::size_t>(design.cs_max) *
                         rtl::kPhasesPerStep);
  for (std::size_t i = 0; i < schedule.levels.size(); ++i) {
    schedule.levels[i].step =
        static_cast<unsigned>(i / rtl::kPhasesPerStep) + 1;
    schedule.levels[i].phase =
        rtl::phase_from_index(static_cast<int>(i % rtl::kPhasesPerStep));
  }

  for (TransInstance& instance : instances) {
    if (instance.phase == rtl::kPhaseHigh) {
      throw std::invalid_argument("instance '" + instance.name() +
                                  "' fires at phase cr, which has no release "
                                  "level in the static schedule");
    }
    const std::size_t ordinal =
        (static_cast<std::size_t>(instance.step) - 1) * rtl::kPhasesPerStep +
        static_cast<std::size_t>(rtl::phase_index(instance.phase));
    schedule.levels[ordinal].fires.push_back(std::move(instance));
  }

  schedule.module_order = levelize_modules(design);
  for (const ScheduleLevel& level : schedule.levels) {
    schedule.occupancy.instances += level.fires.size();
    if (!level.fires.empty()) {
      ++schedule.occupancy.occupied_levels;
      schedule.occupancy.busiest_level =
          std::max(schedule.occupancy.busiest_level, level.fires.size());
    }
  }
  return schedule;
}

std::shared_ptr<const CompiledDesign> CompiledDesign::compile(Design design) {
  auto compiled = std::make_shared<CompiledDesign>();
  compiled->schedule = lower_schedule(design);
  compiled->design = std::move(design);
  return compiled;
}

std::shared_ptr<const CompiledDesign> CompiledDesign::compile(
    Design design, std::vector<TransInstance> instances) {
  auto compiled = std::make_shared<CompiledDesign>();
  compiled->schedule = lower_schedule(design, std::move(instances));
  compiled->design = std::move(design);
  return compiled;
}

std::string to_text(const StaticSchedule& schedule) {
  std::ostringstream out;
  out << "static schedule '" << schedule.design_name << "' (" << schedule.cs_max
      << " steps, " << schedule.levels.size() << " levels)\n";
  for (const ScheduleLevel& level : schedule.levels) {
    if (level.fires.empty()) {
      continue;
    }
    out << "  step " << level.step << " " << rtl::phase_name(level.phase)
        << "  |";
    for (std::size_t i = 0; i < level.fires.size(); ++i) {
      out << (i == 0 ? " " : ", ") << to_string(level.fires[i].source) << " -> "
          << to_string(level.fires[i].sink);
    }
    out << "\n";
  }
  out << "  module order:";
  if (schedule.module_order.empty()) {
    out << " (none)";
  }
  for (const std::string& name : schedule.module_order) {
    out << " " << name;
  }
  out << "\n  occupancy: " << schedule.occupancy.instances << " instances, "
      << schedule.occupancy.occupied_levels << "/" << schedule.levels.size()
      << " levels occupied, busiest level " << schedule.occupancy.busiest_level
      << "\n";
  return out.str();
}

}  // namespace ctrtl::transfer
