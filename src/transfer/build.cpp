#include "transfer/build.h"

#include <optional>
#include <set>
#include <stdexcept>

#include "rtl/modules.h"
#include "transfer/mapping.h"
#include "transfer/schedule.h"

namespace ctrtl::transfer {

namespace {

void add_module_for(rtl::RtModel& model, const ModuleDecl& decl) {
  using Span = std::span<const std::int64_t>;
  switch (decl.kind) {
    case ModuleKind::kAdd:
      model.add_module<rtl::FixedFunctionModule>(
          decl.name, 2u, decl.latency, [](Span v) { return v[0] + v[1]; });
      return;
    case ModuleKind::kSub:
      model.add_module<rtl::FixedFunctionModule>(
          decl.name, 2u, decl.latency, [](Span v) { return v[0] - v[1]; });
      return;
    case ModuleKind::kMul: {
      const unsigned frac = decl.frac_bits;
      model.add_module<rtl::FixedFunctionModule>(
          decl.name, 2u, decl.latency,
          [frac](Span v) { return rtl::fixed_mul(v[0], v[1], frac); });
      return;
    }
    case ModuleKind::kAlu:
      model.add_module<rtl::AluModule>(decl.name, 2u, decl.latency,
                                       rtl::make_standard_alu_ops());
      return;
    case ModuleKind::kCopy:
      model.add_module<rtl::CopyModule>(decl.name);
      return;
    case ModuleKind::kMacc:
      model.add_module<rtl::MaccModule>(decl.name, decl.frac_bits);
      return;
    case ModuleKind::kCordic:
      model.add_module<rtl::CordicModule>(decl.name, decl.frac_bits,
                                          decl.iterations, decl.latency);
      return;
  }
  throw std::logic_error("add_module_for: corrupt module kind");
}

}  // namespace

rtl::RtSignal& endpoint_signal(rtl::RtModel& model, const Endpoint& endpoint) {
  const auto fail = [&]() -> rtl::RtSignal& {
    throw std::invalid_argument("endpoint '" + to_string(endpoint) +
                                "' names no resource in the model");
  };
  switch (endpoint.kind) {
    case Endpoint::Kind::kRegisterOut: {
      rtl::Register* reg = model.find_register(endpoint.resource);
      return reg != nullptr ? reg->out() : fail();
    }
    case Endpoint::Kind::kRegisterIn: {
      rtl::Register* reg = model.find_register(endpoint.resource);
      return reg != nullptr ? reg->in() : fail();
    }
    case Endpoint::Kind::kModuleOut: {
      rtl::Module* module = model.find_module(endpoint.resource);
      return module != nullptr ? module->out() : fail();
    }
    case Endpoint::Kind::kModuleIn: {
      rtl::Module* module = model.find_module(endpoint.resource);
      return module != nullptr ? module->input(endpoint.port) : fail();
    }
    case Endpoint::Kind::kModuleOp: {
      rtl::Module* module = model.find_module(endpoint.resource);
      return module != nullptr ? module->op_port() : fail();
    }
    case Endpoint::Kind::kBus: {
      rtl::RtSignal* bus = model.find_bus(endpoint.resource);
      return bus != nullptr ? *bus : fail();
    }
    case Endpoint::Kind::kConstant: {
      rtl::RtSignal* constant = model.find_constant(endpoint.resource);
      return constant != nullptr ? *constant : fail();
    }
    case Endpoint::Kind::kInput: {
      rtl::RtSignal* input = model.find_input(endpoint.resource);
      return input != nullptr ? *input : fail();
    }
  }
  throw std::logic_error("endpoint_signal: corrupt endpoint kind");
}

std::map<std::string, unsigned> latency_map(const Design& design) {
  std::map<std::string, unsigned> latencies;
  for (const ModuleDecl& module : design.modules) {
    latencies[module.name] = module.latency;
  }
  return latencies;
}

namespace {

/// Resource elaboration shared by every build path: registers, buses,
/// constants (including the implicit op-code constants derived from the
/// design's tuples), inputs, and modules — everything except the TRANS
/// instances themselves.
std::unique_ptr<rtl::RtModel> elaborate_resources(const Design& design,
                                                  rtl::TransferMode mode) {
  auto model = std::make_unique<rtl::RtModel>(design.cs_max, mode);
  for (const RegisterDecl& reg : design.registers) {
    model->add_register(reg.name, reg.initial.has_value()
                                      ? std::optional(rtl::RtValue::of(*reg.initial))
                                      : std::nullopt);
  }
  for (const BusDecl& bus : design.buses) {
    model->add_bus(bus.name);
  }
  for (const ConstantDecl& constant : design.constants) {
    model->add_constant(constant.name, constant.value);
  }
  for (const InputDecl& input : design.inputs) {
    model->add_input(input.name);
  }
  for (const ModuleDecl& module : design.modules) {
    add_module_for(*model, module);
  }

  // Implicit constant sources for op codes (shared across modules).
  std::set<std::int64_t> op_codes;
  for (const RegisterTransfer& transfer : design.transfers) {
    if (transfer.op) {
      op_codes.insert(*transfer.op);
    }
  }
  for (const std::int64_t code : op_codes) {
    const std::string name = op_constant_name(code);
    if (model->find_constant(name) == nullptr) {
      model->add_constant(name, code);
    }
  }
  return model;
}

/// Shared elaboration body: `schedule` is non-null exactly in compiled mode
/// (lowered by the caller, possibly once for a whole batch of instances).
std::unique_ptr<rtl::RtModel> elaborate(const Design& design,
                                        const StaticSchedule* schedule,
                                        rtl::TransferMode mode) {
  auto model = elaborate_resources(design, mode);
  if (schedule != nullptr) {
    for (const ScheduleLevel& level : schedule->levels) {
      for (const TransInstance& instance : level.fires) {
        model->add_transfer(instance.step, instance.phase,
                            endpoint_signal(*model, instance.source),
                            endpoint_signal(*model, instance.sink),
                            instance.name());
      }
    }
    return model;
  }
  for (const TransInstance& instance : to_instances(design.transfers)) {
    model->add_transfer(instance.step, instance.phase,
                        endpoint_signal(*model, instance.source),
                        endpoint_signal(*model, instance.sink), instance.name());
  }
  return model;
}

}  // namespace

std::unique_ptr<rtl::RtModel> build_model(const Design& design,
                                          rtl::TransferMode mode) {
  // Compiled mode elaborates from the statically lowered schedule:
  // `lower_schedule` validates the design (including the no-cr-fires
  // restriction) and groups the TRANS instances per (step, phase) level —
  // the symbolic form of the engine's action tables. Instance declaration
  // order is preserved within each level, which is all the compiled engine
  // needs for event-order parity with the process-based modes.
  if (mode == rtl::TransferMode::kCompiled) {
    const StaticSchedule schedule = lower_schedule(design);
    return elaborate(design, &schedule, mode);
  }
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("design '" + design.name +
                                "' does not validate:\n" + diags.to_text());
  }
  return elaborate(design, nullptr, mode);
}

std::unique_ptr<rtl::RtModel> build_model(const Design& design,
                                          std::span<const TransInstance> instances,
                                          rtl::TransferMode mode) {
  if (mode == rtl::TransferMode::kCompiled) {
    const StaticSchedule schedule =
        lower_schedule(design, {instances.begin(), instances.end()});
    return elaborate(design, &schedule, mode);
  }
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("design '" + design.name +
                                "' does not validate:\n" + diags.to_text());
  }
  auto model = elaborate_resources(design, mode);
  for (const TransInstance& instance : instances) {
    model->add_transfer(instance.step, instance.phase,
                        endpoint_signal(*model, instance.source),
                        endpoint_signal(*model, instance.sink), instance.name());
  }
  return model;
}

std::unique_ptr<rtl::RtModel> build_model(const CompiledDesign& compiled,
                                          rtl::TransferMode mode) {
  if (mode == rtl::TransferMode::kCompiled) {
    return elaborate(compiled.design, &compiled.schedule, mode);
  }
  common::DiagnosticBag diags;
  if (!validate(compiled.design, diags)) {
    throw std::invalid_argument("design '" + compiled.design.name +
                                "' does not validate:\n" + diags.to_text());
  }
  return elaborate(compiled.design, nullptr, mode);
}

}  // namespace ctrtl::transfer
