#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "transfer/design.h"
#include "transfer/tuple.h"

namespace ctrtl::transfer {

/// One level of the statically lowered six-phase schedule: the TRANS
/// instances that fire (drive source -> sink) at the delta cycle realizing
/// `(step, phase)`. Every instance implicitly releases (drives DISC) at the
/// next level — the level list therefore *is* the compiled engine's action
/// table in symbolic form.
struct ScheduleLevel {
  unsigned step = 0;
  rtl::Phase phase = rtl::Phase::kRa;
  std::vector<TransInstance> fires;
};

/// A `Design` lowered onto the phase wheel: one level per delta ordinal
/// (1..cs_max*6, in execution order), plus the canonical levelized module
/// evaluation order and occupancy statistics.
///
/// The six-phase discipline makes this levelization trivial in the best
/// sense: a fire's level is syntactically known (`(step-1)*6 + phase`), and
/// within one `cm` cycle all module evaluations are mutually independent
/// (an output only becomes visible one delta cycle later), so *any*
/// intra-level order computes the same values. The compiled engine still
/// needs a canonical order for event/trace parity with the event kernel —
/// levels preserve instance declaration order, and `module_order` sorts
/// modules topologically by producer->consumer data dependencies (declaration
/// order breaks ties and register-feedback cycles).
struct StaticSchedule {
  std::string design_name;
  unsigned cs_max = 0;
  /// levels[i] is delta ordinal i+1; exactly cs_max * 6 entries.
  std::vector<ScheduleLevel> levels;
  /// Module names in levelized (dependency-topological) evaluation order.
  std::vector<std::string> module_order;

  struct Occupancy {
    std::size_t instances = 0;        ///< total TRANS instances lowered
    std::size_t occupied_levels = 0;  ///< levels with at least one fire
    std::size_t busiest_level = 0;    ///< max fires in any single level
  };
  Occupancy occupancy;

  /// The level realizing `(step, phase)`; nullptr when out of range.
  [[nodiscard]] const ScheduleLevel* level(unsigned step, rtl::Phase phase) const;
};

/// Lowers a validated design into its static schedule. Throws
/// `std::invalid_argument` when the design does not validate or when an
/// instance fires at phase `cr` (which has no release level — the same
/// restriction `rtl::RtModel::add_transfer` enforces in compiled mode).
[[nodiscard]] StaticSchedule lower_schedule(const Design& design);

/// Same lowering, but from an explicit TRANS instance stream instead of the
/// design's own tuples. This is the fault-injection entry point: a
/// `fault::FaultPlan` transforms the canonical instance stream (drop,
/// rewrite, append) and the transformed stream must reach every engine
/// unchanged. Stream order is preserved within each level — instances keep
/// the relative order the equivalent TRANS processes would be spawned in.
[[nodiscard]] StaticSchedule lower_schedule(const Design& design,
                                            std::vector<TransInstance> instances);

/// A design paired with its statically lowered schedule, lowered exactly
/// once. Every consumer — per-instance compiled models, the lane engine,
/// tools — shares the same immutable tables read-only; the shared_ptr makes
/// the sharing explicit across `rtl::BatchRunner` instances and worker
/// threads (lowering N times for an N-instance batch was pure elaboration
/// overhead, see build_model(const CompiledDesign&)).
struct CompiledDesign {
  Design design;
  StaticSchedule schedule;

  /// Validates and lowers `design` (throws like `lower_schedule`).
  [[nodiscard]] static std::shared_ptr<const CompiledDesign> compile(Design design);

  /// Validates `design` but lowers the explicit `instances` stream instead
  /// of the design's own tuples (the fault-injection path).
  [[nodiscard]] static std::shared_ptr<const CompiledDesign> compile(
      Design design, std::vector<TransInstance> instances);
};

/// Human-readable rendering, one line per occupied level:
///   "step 5 ra   | R1.out -> B1, R2.out -> B2"
/// followed by the module order and occupancy summary. Used by
/// `ctrtl_design --engine=compiled` diagnostics and the docs.
[[nodiscard]] std::string to_text(const StaticSchedule& schedule);

}  // namespace ctrtl::transfer
