#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "transfer/tuple.h"

namespace ctrtl::transfer {

/// Canonical name of the implicit constant source that feeds a module's
/// operation port ("op5" for op code 5). Parsing it back yields the code.
[[nodiscard]] std::string op_constant_name(std::int64_t code);
[[nodiscard]] bool parse_op_constant_name(const std::string& name, std::int64_t& code);

/// The paper's forward mapping (section 2.7): a 9-tuple expands into one
/// TRANS instance per underlined tuple fragment —
///
///   (R1,B1,R2,B2,5,ADD,6,B1,R1) -> R1_out_B1_5   (5, ra, R1.out -> B1)
///                                  B1_ADD_in1_5  (5, rb, B1 -> ADD.in1)
///                                  R2_out_B2_5   (5, ra, R2.out -> B2)
///                                  B2_ADD_in2_5  (5, rb, B2 -> ADD.in2)
///                                  ADD_out_B1_6  (6, wa, ADD.mout -> B1)
///                                  B1_R1_in_6    (6, wb, B1 -> R1.in)
///
/// The op extension adds (read_step, rb, #opN -> module.op).
[[nodiscard]] std::vector<TransInstance> to_instances(const RegisterTransfer& transfer);

/// Forward mapping over a whole schedule.
[[nodiscard]] std::vector<TransInstance> to_instances(
    std::span<const RegisterTransfer> transfers);

/// The paper's reverse mapping: TRANS instances pair up into *partial*
/// tuples ('-' fields), one partial per (ra, rb) operand pair and one per
/// (wa, wb) result pair:
///
///   R1_out_B1_5, B1_ADD_in1_5 -> (R1, B1, -, -, 5, ADD, -, -, -)
///   ADD_out_B1_6, B1_R1_in_6  -> (-, -, -, -, -, ADD, 6, B1, R1)
///
/// Instances that do not pair (dangling drives) are reported in `orphans`
/// when the pointer is non-null.
[[nodiscard]] std::vector<RegisterTransfer> to_partial_tuples(
    std::span<const TransInstance> instances,
    std::vector<TransInstance>* orphans = nullptr);

/// Merges compatible partial tuples into full tuples:
///  1. read partials of the same module and read step merge their operand
///     and op fields;
///  2. a write partial fuses with the unique read partial whose
///     `read_step + latency(module)` equals its write step.
/// `module_latency` supplies the per-module pipeline depth. Unmergeable
/// partials are returned as-is.
[[nodiscard]] std::vector<RegisterTransfer> merge_partials(
    std::vector<RegisterTransfer> partials,
    const std::map<std::string, unsigned>& module_latency);

}  // namespace ctrtl::transfer
