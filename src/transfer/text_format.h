#pragma once

#include <string>
#include <string_view>

#include "common/diagnostics.h"
#include "transfer/design.h"

namespace ctrtl::transfer {

/// Plain-text serialization of a `Design` (".rtd" files) so schedules can
/// be written by hand or by external schedulers and fed to the tools.
///
/// Line-oriented format; `#` starts a comment:
///
///   design  <name>
///   cs_max  <steps>
///   register <name> [init <int>]
///   bus      <name>
///   input    <name>
///   constant <name> <int>
///   module   <name> <kind> [latency <n>] [frac <n>] [iters <n>]
///   transfer <srcA> <busA> <srcB> <busB> <read> <module> <write> <wbus> <dst> [op <int>]
///
/// `<kind>` is one of add, sub, mul, alu, copy, macc, cordic. In a transfer
/// line, `-` marks an absent field (partial tuples); operand sources are a
/// bare name (register), `%name` (constant), or `$name` (external input) —
/// `%` rather than the in-memory `#` sigil, which is the comment character
/// here.
[[nodiscard]] std::string to_text(const Design& design);

/// Parses the format above. All problems (with line numbers) go into
/// `diags`; returns the design regardless — check `!diags.has_errors()`.
[[nodiscard]] Design parse_design(std::string_view text,
                                  common::DiagnosticBag& diags);

}  // namespace ctrtl::transfer
