#include "transfer/walk.h"

namespace ctrtl::transfer {

InstanceWalker::InstanceWalker(std::span<const TransInstance> instances,
                               unsigned cs_max)
    : cs_max_(cs_max) {
  levels_.resize(static_cast<std::size_t>(cs_max) * rtl::kPhasesPerStep);
  for (const TransInstance& instance : instances) {
    if (instance.step == 0 || instance.step > cs_max) {
      continue;
    }
    const std::size_t level =
        static_cast<std::size_t>(instance.step - 1) * rtl::kPhasesPerStep +
        static_cast<std::size_t>(rtl::phase_index(instance.phase));
    levels_[level].push_back(&instance);
    ++instance_count_;
  }
}

std::span<const TransInstance* const> InstanceWalker::fires(
    unsigned step, rtl::Phase phase) const {
  if (step == 0 || step > cs_max_) {
    return {};
  }
  const std::size_t level =
      static_cast<std::size_t>(step - 1) * rtl::kPhasesPerStep +
      static_cast<std::size_t>(rtl::phase_index(phase));
  return levels_[level];
}

void InstanceWalker::for_each_level(
    const std::function<void(unsigned, rtl::Phase,
                             std::span<const TransInstance* const>)>& visit)
    const {
  for (unsigned step = 1; step <= cs_max_; ++step) {
    for (int index = 0; index < rtl::kPhasesPerStep; ++index) {
      const rtl::Phase phase = rtl::phase_from_index(index);
      visit(step, phase, fires(step, phase));
    }
  }
}

}  // namespace ctrtl::transfer
