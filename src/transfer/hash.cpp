#include "transfer/hash.h"

#include <cstdio>

#include "transfer/mapping.h"

namespace ctrtl::transfer {

namespace {

/// Bump when the key encoding changes shape; keys from different versions
/// must never collide by construction.
constexpr std::string_view kFormatTag = "ctrtl-stream-hash/1";

void hash_endpoint(StreamHasher& hasher, const Endpoint& endpoint) {
  hasher.update(static_cast<std::uint8_t>(endpoint.kind));
  hasher.update(endpoint.resource);
  hasher.update(static_cast<std::uint32_t>(endpoint.port));
}

void hash_declarations(StreamHasher& hasher, const Design& design) {
  hasher.update(kFormatTag);
  hasher.update(design.name);
  hasher.update(static_cast<std::uint32_t>(design.cs_max));

  hasher.update(static_cast<std::uint64_t>(design.registers.size()));
  for (const RegisterDecl& reg : design.registers) {
    hasher.update(reg.name);
    hasher.update(static_cast<std::uint8_t>(reg.initial.has_value() ? 1 : 0));
    hasher.update(reg.initial.value_or(0));
  }

  hasher.update(static_cast<std::uint64_t>(design.buses.size()));
  for (const BusDecl& bus : design.buses) {
    hasher.update(bus.name);
  }

  hasher.update(static_cast<std::uint64_t>(design.modules.size()));
  for (const ModuleDecl& module : design.modules) {
    hasher.update(module.name);
    hasher.update(static_cast<std::uint8_t>(module.kind));
    hasher.update(static_cast<std::uint32_t>(module.latency));
    hasher.update(static_cast<std::uint32_t>(module.frac_bits));
    hasher.update(static_cast<std::uint32_t>(module.iterations));
  }

  hasher.update(static_cast<std::uint64_t>(design.constants.size()));
  for (const ConstantDecl& constant : design.constants) {
    hasher.update(constant.name);
    hasher.update(constant.value);
  }

  hasher.update(static_cast<std::uint64_t>(design.inputs.size()));
  for (const InputDecl& input : design.inputs) {
    hasher.update(input.name);
  }
}

void hash_stream(StreamHasher& hasher,
                 std::span<const TransInstance> instances) {
  hasher.update(static_cast<std::uint64_t>(instances.size()));
  for (const TransInstance& instance : instances) {
    hasher.update(static_cast<std::uint32_t>(instance.step));
    hasher.update(static_cast<std::uint8_t>(instance.phase));
    hash_endpoint(hasher, instance.source);
    hash_endpoint(hasher, instance.sink);
  }
}

}  // namespace

void StreamHasher::update_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= kPrime;
  }
}

void StreamHasher::update(std::string_view text) {
  update(static_cast<std::uint64_t>(text.size()));
  update_bytes(text.data(), text.size());
}

void StreamHasher::update(std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xffu);
  }
  update_bytes(bytes, sizeof bytes);
}

void StreamHasher::update(std::int64_t value) {
  update(static_cast<std::uint64_t>(value));
}

void StreamHasher::update(std::uint32_t value) {
  update(static_cast<std::uint64_t>(value));
}

void StreamHasher::update(std::uint8_t value) {
  update_bytes(&value, 1);
}

std::uint64_t canonical_stream_hash(const Design& design,
                                    std::span<const TransInstance> instances) {
  StreamHasher hasher;
  hash_declarations(hasher, design);
  hash_stream(hasher, instances);
  return hasher.digest();
}

std::uint64_t canonical_stream_hash(const Design& design) {
  const std::vector<TransInstance> instances = to_instances(design.transfers);
  return canonical_stream_hash(design, instances);
}

std::string to_hex(std::uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buffer, 16);
}

}  // namespace ctrtl::transfer
