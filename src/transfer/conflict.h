#pragma once

#include <string>
#include <vector>

#include "rtl/phase.h"
#include "transfer/design.h"

namespace ctrtl::transfer {

/// A statically-predicted resource conflict: several TRANS instances drive
/// the same sink in the same (step, phase). The ILLEGAL value becomes
/// visible on the sink one phase later — `step`/`visible_phase` name that
/// simulation cycle, matching the dynamic `rtl::Conflict` records.
struct DriveConflict {
  std::string sink;  // signal name, matching rtl naming ("B1", "ADD.in1", ...)
  unsigned step = 0;
  rtl::Phase drive_phase = rtl::Phase::kRa;
  rtl::Phase visible_phase = rtl::Phase::kRb;
  unsigned driver_count = 0;

  friend bool operator==(const DriveConflict&, const DriveConflict&) = default;
};

std::string to_string(const DriveConflict& conflict);

/// A module whose operand discipline is violated in some step: a strict
/// subset of the required operand ports receives a transfer, which makes
/// the module compute ILLEGAL (paper section 2.6).
struct DisciplineViolation {
  std::string module;
  unsigned step = 0;
  unsigned ports_driven = 0;
  unsigned ports_required = 0;

  friend bool operator==(const DisciplineViolation&, const DisciplineViolation&) = default;
};

std::string to_string(const DisciplineViolation& violation);

struct AnalysisReport {
  std::vector<DriveConflict> drive_conflicts;
  std::vector<DisciplineViolation> discipline_violations;

  [[nodiscard]] bool clean() const {
    return drive_conflicts.empty() && discipline_violations.empty();
  }
};

/// Static scheduling analysis over the transfer set (no simulation): finds
/// all multi-drive conflicts and operand-discipline violations.
///
/// Drive conflicts are *potential*: they materialize as dynamic ILLEGAL
/// values when at least two of the colliding sources carry non-DISC values
/// at that step (always the case once source registers are loaded). A
/// report with `clean() == true` guarantees a conflict-free simulation —
/// this is cross-checked against the exact reference evaluator and the
/// kernel in the property tests.
[[nodiscard]] AnalysisReport analyze(const Design& design);

}  // namespace ctrtl::transfer
