#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "fault/inject.h"
#include "transfer/design.h"
#include "transfer/tuple.h"
#include "verify/oracle_check.h"

namespace ctrtl::gen {

/// The conflict oracle: predicts, from the TRANS instance stream alone —
/// without simulating — the exact (step, phase) and signal of every ILLEGAL
/// conflict record, every driven-sink DISC resolution, and the final
/// DISC/ILLEGAL/value classification of each register.
///
/// The paper's tuple <-> TRANS mapping (section 2.7) makes each fire's
/// level syntactically known, so the oracle abstractly interprets the same
/// six-phase transition system as `verify::evaluate` over the three-point
/// domain {DISC, value, ILLEGAL} plus known constant payloads. The
/// abstraction is *exact* for this model class because every rule that
/// separates the classes — the section 2.3 resolution function, the module
/// operand discipline, pipeline poisoning, register latching — depends only
/// on the class of its inputs, never on a payload. The single exception is
/// the operation-port arity lookup, which needs the op's concrete code;
/// op ports are fed by op constants (or fault-plan constants), whose
/// payloads the stream carries syntactically. A stream that drives an op
/// port from a payload the oracle cannot know statically (impossible via
/// `to_instances` and `fault::apply_plan`) throws std::domain_error.
///
/// `inputs` only matters as a presence set: a provided external input is a
/// value, an unprovided one reads DISC.
///
/// Throws std::invalid_argument when the design does not validate.
[[nodiscard]] verify::OutcomePrediction predict_outcomes(
    const transfer::Design& design,
    std::span<const transfer::TransInstance> instances,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Prediction over the design's canonical instance stream.
[[nodiscard]] verify::OutcomePrediction predict_outcomes(
    const transfer::Design& design,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Re-prediction under a fault plan: the oracle walks the *transformed*
/// stream, so stuck-disc reads vanish, forced contributions contend, and
/// dropped transfers leave DISC exactly where every engine observes them.
[[nodiscard]] verify::OutcomePrediction predict_outcomes(
    const fault::FaultedDesign& faulted,
    const std::map<std::string, std::int64_t>& inputs = {});

}  // namespace ctrtl::gen
