#include "gen/generator.h"

#include <algorithm>
#include <iomanip>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/diagnostics.h"
#include "gen/oracle.h"
#include "rtl/modules.h"

namespace ctrtl::gen {

std::string to_string(Profile profile) {
  switch (profile) {
    case Profile::kFabric:
      return "fabric";
    case Profile::kRegfile:
      return "regfile";
    case Profile::kPipeline:
      return "pipeline";
    case Profile::kConflict:
      return "conflict";
    case Profile::kMixed:
      return "mixed";
  }
  return "<corrupt>";
}

bool parse_profile(const std::string& text, Profile& profile) {
  for (const Profile candidate :
       {Profile::kFabric, Profile::kRegfile, Profile::kPipeline,
        Profile::kConflict, Profile::kMixed}) {
    if (text == to_string(candidate)) {
      profile = candidate;
      return true;
    }
  }
  return false;
}

namespace {

using iks::ModuleAction;
using iks::RegSel;
using iks::Route;
using transfer::ModuleDecl;
using transfer::ModuleKind;

using Rng = std::mt19937_64;

/// Uniform draw from [lo, hi] via modulo — deterministic across standard
/// libraries, unlike std::uniform_int_distribution.
unsigned pick(Rng& rng, unsigned lo, unsigned hi) {
  if (hi <= lo) {
    return lo;
  }
  return lo + static_cast<unsigned>(rng() % (hi - lo + 1));
}

bool chance(Rng& rng, unsigned percent) {
  return rng() % 100 < percent;
}

template <typename T>
const T& pick_of(Rng& rng, const std::vector<T>& pool) {
  return pool[pick(rng, 0, static_cast<unsigned>(pool.size()) - 1)];
}

/// One microprogram row under construction: the routes/actions that will
/// become this step's opc1/opc2 codes, plus the instruction fields the
/// file selectors resolve through.
struct StepPlan {
  std::vector<Route> routes;
  std::vector<ModuleAction> actions;
  unsigned j = 0;
  unsigned r = 0;
  unsigned m = 0;
};

/// Generation state: the declared resources, the per-step plans, and the
/// (step, resource) occupancy sets that keep clean placements conflict-free.
/// Read-side and write-side bus occupancy are tracked separately because an
/// `ra` drive and a `wa` drive of the same bus in the same step resolve in
/// different phases and never contend.
struct Build {
  const GeneratorConfig& cfg;
  Rng& rng;
  transfer::Design design;
  std::map<unsigned, StepPlan> plans;
  unsigned transfer_count = 0;

  std::vector<std::string> seed_regs;  // small-init, never written (MUL-safe)
  std::vector<std::string> sink_regs;  // write destinations
  std::vector<std::string> const_names;

  std::set<std::pair<unsigned, std::string>> read_bus;     // (step, bus)
  std::set<std::pair<unsigned, std::string>> write_bus;    // (write step, bus)
  std::set<std::pair<unsigned, std::string>> write_reg;    // (write step, reg)
  std::set<std::pair<unsigned, std::string>> module_busy;  // (step, module)

  Build(const GeneratorConfig& config, Rng& generator)
      : cfg(config), rng(generator) {
    // Profiles hold references to declared modules across declarations.
    design.modules.reserve(16);
  }

  [[nodiscard]] bool budget_left() const {
    return transfer_count < cfg.max_transfers;
  }
};

void declare_registers(Build& b, unsigned seeds, unsigned sinks) {
  for (unsigned i = 0; i < seeds + sinks; ++i) {
    const std::string name = "R" + std::to_string(i);
    b.design.registers.push_back(
        {name, static_cast<std::int64_t>(pick(b.rng, 1, 9))});
    (i < seeds ? b.seed_regs : b.sink_regs).push_back(name);
  }
}

void declare_buses(Build& b, unsigned count) {
  for (unsigned i = 0; i < count; ++i) {
    b.design.buses.push_back({"B" + std::to_string(i)});
  }
}

void declare_constants(Build& b, unsigned count) {
  for (unsigned i = 0; i < count; ++i) {
    const std::string name = "K" + std::to_string(i);
    b.design.constants.push_back(
        {name, static_cast<std::int64_t>(pick(b.rng, 1, 9))});
    b.const_names.push_back(name);
  }
}

const ModuleDecl& declare_module(Build& b, std::string name, ModuleKind kind,
                                 unsigned latency) {
  // CopyModule elaborates with a hard-wired zero latency and MaccModule with
  // one; the decl must agree or the reference pipeline depth would diverge.
  if (kind == ModuleKind::kCopy) {
    latency = 0;
  } else if (kind == ModuleKind::kMacc) {
    latency = 1;
  }
  b.design.modules.push_back({std::move(name), kind, latency});
  return b.design.modules.back();
}

std::vector<std::string> free_read_buses(const Build& b, unsigned step) {
  std::vector<std::string> free;
  for (const transfer::BusDecl& bus : b.design.buses) {
    if (!b.read_bus.contains({step, bus.name})) {
      free.push_back(bus.name);
    }
  }
  return free;
}

/// Operand source for a clean route. Multiplying units only ever read the
/// never-written seed registers, which bounds every product chain well below
/// the int64 range (overflow containment).
RegSel pick_source(Build& b, ModuleKind kind) {
  const bool multiplies = kind == ModuleKind::kMul || kind == ModuleKind::kMacc;
  if (!multiplies && !b.const_names.empty() && chance(b.rng, 20)) {
    return RegSel::constant(pick_of(b.rng, b.const_names));
  }
  const std::vector<std::string>& pool =
      ((multiplies || b.sink_regs.empty() || chance(b.rng, 60)) &&
       !b.seed_regs.empty())
          ? b.seed_regs
          : b.sink_regs;
  return RegSel::fixed(pick_of(b.rng, pool));
}

/// ALU repertoire used by clean activities: (op code, arity).
std::pair<std::int64_t, unsigned> pick_alu_op(Rng& rng) {
  namespace ops = rtl::alu_ops;
  static const std::pair<std::int64_t, unsigned> kChoices[] = {
      {ops::kAdd, 2},  {ops::kSub, 2},          {ops::kPassA, 1},
      {ops::kNegA, 1}, {ops::kMin, 2},          {ops::kMax, 2},
      {ops::kRshiftBase + 2, 1},
  };
  return kChoices[pick(rng, 0, 6)];
}

/// Schedules one conflict-free activity of `module` at `step`: routes for
/// the op's full arity over distinct unoccupied buses, the action with op
/// code, and (usually) a write-back to an unoccupied (bus, register) slot at
/// step + latency. Returns false when the step has no room.
bool clean_activity(Build& b, unsigned step, const ModuleDecl& module) {
  if (!b.budget_left() || b.module_busy.contains({step, module.name})) {
    return false;
  }
  std::optional<std::int64_t> op;
  unsigned arity = module.num_inputs();
  if (module.kind == ModuleKind::kAlu) {
    const auto [code, op_arity] = pick_alu_op(b.rng);
    op = code;
    arity = op_arity;
  } else if (module.kind == ModuleKind::kMacc) {
    op = rtl::MaccModule::kOpMac;
    arity = 2;
  }
  std::vector<std::string> buses = free_read_buses(b, step);
  if (buses.size() < arity) {
    return false;
  }
  // Deterministic draw of `arity` distinct buses.
  std::vector<std::string> chosen;
  for (unsigned i = 0; i < arity; ++i) {
    const unsigned index = pick(b.rng, 0, static_cast<unsigned>(buses.size()) - 1);
    chosen.push_back(buses[index]);
    buses.erase(buses.begin() + index);
  }

  const unsigned write_step = step + module.latency;
  std::optional<ModuleAction::Write> write;
  if (write_step <= b.design.cs_max && chance(b.rng, 80)) {
    std::vector<std::string> wbuses;
    for (const transfer::BusDecl& bus : b.design.buses) {
      if (!b.write_bus.contains({write_step, bus.name})) {
        wbuses.push_back(bus.name);
      }
    }
    std::vector<std::string> wregs;
    for (const std::string& reg : b.sink_regs) {
      if (!b.write_reg.contains({write_step, reg})) {
        wregs.push_back(reg);
      }
    }
    if (!wbuses.empty() && !wregs.empty()) {
      const std::string wbus = pick_of(b.rng, wbuses);
      const std::string wreg = pick_of(b.rng, wregs);
      write = ModuleAction::Write{RegSel::fixed(wreg), wbus};
      b.write_bus.insert({write_step, wbus});
      b.write_reg.insert({write_step, wreg});
    }
  }

  StepPlan& plan = b.plans[step];
  for (unsigned port = 0; port < arity; ++port) {
    plan.routes.push_back(
        {pick_source(b, module.kind), chosen[port], module.name, port});
    b.read_bus.insert({step, chosen[port]});
  }
  plan.actions.push_back({module.name, op, write});
  b.module_busy.insert({step, module.name});
  ++b.transfer_count;
  return true;
}

// --- profiles ----------------------------------------------------------------

void build_fabric(Build& b) {
  declare_buses(b, pick(b.rng, std::min(3u, b.cfg.max_buses), b.cfg.max_buses));
  const unsigned regs =
      pick(b.rng, std::min(4u, b.cfg.max_registers), b.cfg.max_registers);
  declare_registers(b, regs / 2, regs - regs / 2);
  declare_constants(b, 2);
  b.design.cs_max = pick(b.rng, std::min(6u, b.cfg.max_steps), b.cfg.max_steps);
  std::vector<const ModuleDecl*> palette;
  palette.push_back(&declare_module(b, "ADD0", ModuleKind::kAdd, 1));
  palette.push_back(&declare_module(b, "SUB0", ModuleKind::kSub, 1));
  palette.push_back(&declare_module(b, "ALU0", ModuleKind::kAlu, 1));
  palette.push_back(&declare_module(b, "CP0", ModuleKind::kCopy, 0));
  for (unsigned step = 1; step <= b.design.cs_max && b.budget_left(); ++step) {
    const unsigned activities = pick(b.rng, 0, 2);
    for (unsigned i = 0; i < activities; ++i) {
      clean_activity(b, step, *pick_of(b.rng, palette));
    }
  }
}

void build_regfile(Build& b) {
  declare_buses(b, std::min(3u, std::max(3u, b.cfg.max_buses)));
  declare_registers(b, 0, std::min(4u, std::max(2u, b.cfg.max_registers)));
  for (unsigned i = 0; i < 4; ++i) {
    const std::string name = "J" + std::to_string(i);
    b.design.registers.push_back(
        {name, static_cast<std::int64_t>(pick(b.rng, 1, 9))});
    b.seed_regs.push_back(name);
  }
  declare_constants(b, 1);
  b.design.cs_max = pick(b.rng, std::min(6u, b.cfg.max_steps), b.cfg.max_steps);
  const ModuleDecl& add = declare_module(b, "ADD0", ModuleKind::kAdd, 1);
  const ModuleDecl& macc = declare_module(b, "MAC0", ModuleKind::kMacc, 1);

  const unsigned r_count = static_cast<unsigned>(b.sink_regs.size());
  for (unsigned step = 1; step <= b.design.cs_max && b.budget_left(); ++step) {
    if (chance(b.rng, 40) && step + 2 <= b.design.cs_max &&
        !b.module_busy.contains({step, macc.name})) {
      // MACC segment: clear, then a run of multiply-accumulates indexed
      // through the j/r instruction fields, the last one writing the
      // accumulator to R[m].
      b.plans[step].actions.push_back(
          {macc.name, rtl::MaccModule::kOpClear, std::nullopt});
      b.module_busy.insert({step, macc.name});
      ++b.transfer_count;
      const unsigned run =
          pick(b.rng, 1, std::min(3u, b.design.cs_max - step - 1));
      for (unsigned i = 1; i <= run && b.budget_left(); ++i) {
        const unsigned at = step + i;
        StepPlan& plan = b.plans[at];
        plan.j = pick(b.rng, 0, 3);
        plan.r = pick(b.rng, 0, r_count - 1);
        plan.routes.push_back({RegSel::j_file('j'), "B0", macc.name, 0});
        plan.routes.push_back({RegSel::r_file('r'), "B1", macc.name, 1});
        b.read_bus.insert({at, "B0"});
        b.read_bus.insert({at, "B1"});
        ModuleAction action{macc.name, rtl::MaccModule::kOpMac, std::nullopt};
        const unsigned write_step = at + macc.latency;
        if (i == run && write_step <= b.design.cs_max &&
            !b.write_bus.contains({write_step, "B2"})) {
          std::vector<unsigned> free_m;
          for (unsigned index = 0; index < r_count; ++index) {
            if (!b.write_reg.contains({write_step, "R" + std::to_string(index)})) {
              free_m.push_back(index);
            }
          }
          if (!free_m.empty()) {
            plan.m = pick_of(b.rng, free_m);
            action.write = ModuleAction::Write{RegSel::r_file('m'), "B2"};
            b.write_bus.insert({write_step, "B2"});
            b.write_reg.insert({write_step, "R" + std::to_string(plan.m)});
          }
        }
        plan.actions.push_back(std::move(action));
        b.module_busy.insert({at, macc.name});
        ++b.transfer_count;
      }
      step += run;
    } else if (chance(b.rng, 55)) {
      clean_activity(b, step, add);
    }
  }
}

void build_pipeline(Build& b) {
  declare_buses(b, pick(b.rng, std::min(3u, b.cfg.max_buses), b.cfg.max_buses));
  const unsigned regs =
      pick(b.rng, std::min(4u, b.cfg.max_registers), b.cfg.max_registers);
  declare_registers(b, regs / 2, regs - regs / 2);
  declare_constants(b, 1);
  b.design.cs_max = pick(b.rng, std::min(8u, b.cfg.max_steps),
                         std::max(8u, b.cfg.max_steps));
  std::vector<const ModuleDecl*> palette;
  palette.push_back(
      &declare_module(b, "ADD0", ModuleKind::kAdd, pick(b.rng, 2, 4)));
  palette.push_back(
      &declare_module(b, "SUB0", ModuleKind::kSub, pick(b.rng, 2, 3)));
  palette.push_back(&declare_module(b, "MUL0", ModuleKind::kMul, 2));
  // Issue on consecutive steps so several results are in flight at once.
  for (unsigned step = 1; step <= b.design.cs_max && b.budget_left(); ++step) {
    if (chance(b.rng, 65)) {
      const ModuleDecl& module = *pick_of(b.rng, palette);
      if (step + module.latency <= b.design.cs_max) {
        clean_activity(b, step, module);
      }
    }
  }
}

// --- conflict injections -----------------------------------------------------

/// Any-bus fallback: conflict-profile routes prefer free buses but will
/// double-book deliberately scheduled ones rather than give up.
std::string any_bus(Build& b, unsigned step) {
  std::vector<std::string> free = free_read_buses(b, step);
  if (!free.empty()) {
    return pick_of(b.rng, free);
  }
  return b.design.buses[pick(b.rng, 0, static_cast<unsigned>(
                                          b.design.buses.size()) -
                                          1)]
      .name;
}

std::optional<ModuleAction::Write> any_write(Build& b, unsigned write_step) {
  if (write_step > b.design.cs_max || b.sink_regs.empty()) {
    return std::nullopt;
  }
  std::vector<std::string> wbuses;
  for (const transfer::BusDecl& bus : b.design.buses) {
    if (!b.write_bus.contains({write_step, bus.name})) {
      wbuses.push_back(bus.name);
    }
  }
  const std::string wbus =
      wbuses.empty() ? b.design.buses.front().name : pick_of(b.rng, wbuses);
  const std::string wreg = pick_of(b.rng, b.sink_regs);
  b.write_bus.insert({write_step, wbus});
  b.write_reg.insert({write_step, wreg});
  return ModuleAction::Write{RegSel::fixed(wreg), wbus};
}

const ModuleDecl* find_free_module(Build& b, unsigned step,
                                   const ModuleDecl* other_than = nullptr) {
  std::vector<const ModuleDecl*> free;
  for (const ModuleDecl& module : b.design.modules) {
    if (&module != other_than && module.num_inputs() >= 1 &&
        !b.module_busy.contains({step, module.name})) {
      free.push_back(&module);
    }
  }
  return free.empty() ? nullptr : pick_of(b.rng, free);
}

/// Routes `module`'s full operand arity at `step`, with port 0 taken from
/// `port0_bus` when given (the deliberately shared bus) and the rest from
/// any_bus. Appends the action; bumps the transfer budget.
void route_full(Build& b, unsigned step, const ModuleDecl& module,
                const std::optional<std::string>& port0_bus, bool with_write,
                const RegSel* port0_src = nullptr) {
  std::optional<std::int64_t> op;
  unsigned arity = module.num_inputs();
  if (module.kind == ModuleKind::kAlu) {
    op = rtl::alu_ops::kAdd;
  } else if (module.kind == ModuleKind::kMacc) {
    op = rtl::MaccModule::kOpMac;
  }
  StepPlan& plan = b.plans[step];
  for (unsigned port = 0; port < arity; ++port) {
    const std::string bus = (port == 0 && port0_bus) ? *port0_bus : any_bus(b, step);
    const RegSel src = (port == 0 && port0_src) ? *port0_src
                                                : pick_source(b, module.kind);
    plan.routes.push_back({src, bus, module.name, port});
    b.read_bus.insert({step, bus});
  }
  plan.actions.push_back(
      {module.name, op,
       with_write ? any_write(b, step + module.latency) : std::nullopt});
  b.module_busy.insert({step, module.name});
  ++b.transfer_count;
}

/// Two activities whose port-0 operands share one bus: both `ra` drives
/// contend, the bus goes ILLEGAL at (step, rb), and the poison cascades
/// through both modules into their write-backs.
bool inject_read_doublebook(Build& b) {
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const unsigned step = pick(b.rng, 1, b.design.cs_max);
    const ModuleDecl* first = find_free_module(b, step);
    if (first == nullptr) {
      continue;
    }
    b.module_busy.insert({step, first->name});  // reserve before second draw
    const ModuleDecl* second = find_free_module(b, step, first);
    b.module_busy.erase({step, first->name});
    if (second == nullptr) {
      continue;
    }
    const std::string shared = any_bus(b, step);
    route_full(b, step, *first, shared, true);
    route_full(b, step, *second, shared, true);
    return true;
  }
  return false;
}

/// Two same-latency modules write through one bus in the same step: both
/// `wa` drives contend at (write step, wb).
bool inject_write_doublebook(Build& b) {
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const unsigned step = pick(b.rng, 1, b.design.cs_max);
    std::vector<const ModuleDecl*> free;
    for (const ModuleDecl& module : b.design.modules) {
      if (!b.module_busy.contains({step, module.name}) &&
          step + module.latency <= b.design.cs_max) {
        free.push_back(&module);
      }
    }
    const ModuleDecl* first = nullptr;
    const ModuleDecl* second = nullptr;
    for (const ModuleDecl* a : free) {
      for (const ModuleDecl* candidate : free) {
        if (candidate != a && candidate->latency == a->latency) {
          first = a;
          second = candidate;
          break;
        }
      }
      if (first != nullptr) {
        break;
      }
    }
    if (first == nullptr || b.sink_regs.size() < 2) {
      continue;
    }
    const unsigned write_step = step + first->latency;
    const std::string wbus = b.design.buses.front().name;
    StepPlan& plan = b.plans[step];
    unsigned dest = 0;
    for (const ModuleDecl* module : {first, second}) {
      unsigned arity = module->num_inputs();
      std::optional<std::int64_t> op;
      if (module->kind == ModuleKind::kAlu) {
        op = rtl::alu_ops::kAdd;
      } else if (module->kind == ModuleKind::kMacc) {
        op = rtl::MaccModule::kOpMac;
      }
      for (unsigned port = 0; port < arity; ++port) {
        const std::string bus = any_bus(b, step);
        plan.routes.push_back(
            {pick_source(b, module->kind), bus, module->name, port});
        b.read_bus.insert({step, bus});
      }
      plan.actions.push_back(
          {module->name, op,
           ModuleAction::Write{RegSel::fixed(b.sink_regs[dest]), wbus}});
      b.module_busy.insert({step, module->name});
      b.write_reg.insert({write_step, b.sink_regs[dest]});
      ++b.transfer_count;
      ++dest;
    }
    b.write_bus.insert({write_step, wbus});
    return true;
  }
  return false;
}

/// Operand-discipline violation on a dedicated module: a two-input unit
/// receives only its port-0 operand, evaluates ILLEGAL at (step, cm), and
/// the write-back makes the poison observable.
bool inject_discipline(Build& b, const ModuleDecl& victim) {
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const unsigned step = pick(b.rng, 1, b.design.cs_max);
    if (b.module_busy.contains({step, victim.name}) ||
        step + victim.latency > b.design.cs_max) {
      continue;
    }
    StepPlan& plan = b.plans[step];
    const std::string bus = any_bus(b, step);
    plan.routes.push_back(
        {pick_source(b, victim.kind), bus, victim.name, 0});
    b.read_bus.insert({step, bus});
    plan.actions.push_back(
        {victim.name, std::nullopt, any_write(b, step + victim.latency)});
    b.module_busy.insert({step, victim.name});
    ++b.transfer_count;
    return true;
  }
  return false;
}

/// Reads of a never-written, never-initialized register: both operands DISC
/// gives a DISC result (vanishing write), one DISC operand against a value
/// is a discipline ILLEGAL.
bool inject_uninit_read(Build& b, const std::string& uninit) {
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const unsigned step = pick(b.rng, 1, b.design.cs_max);
    const ModuleDecl* module = find_free_module(b, step);
    if (module == nullptr || module->num_inputs() < 2 ||
        step + module->latency > b.design.cs_max) {
      continue;
    }
    const bool both_disc = chance(b.rng, 50);
    const RegSel src0 = RegSel::fixed(uninit);
    StepPlan& plan = b.plans[step];
    const std::string bus0 = any_bus(b, step);
    plan.routes.push_back({src0, bus0, module->name, 0});
    b.read_bus.insert({step, bus0});
    const std::string bus1 = any_bus(b, step);
    plan.routes.push_back({both_disc ? RegSel::fixed(uninit)
                                     : pick_source(b, module->kind),
                           bus1, module->name, 1});
    b.read_bus.insert({step, bus1});
    std::optional<std::int64_t> op;
    if (module->kind == ModuleKind::kAlu) {
      op = rtl::alu_ops::kAdd;
    } else if (module->kind == ModuleKind::kMacc) {
      op = rtl::MaccModule::kOpMac;
    }
    plan.actions.push_back(
        {module->name, op, any_write(b, step + module->latency)});
    b.module_busy.insert({step, module->name});
    ++b.transfer_count;
    return true;
  }
  return false;
}

/// An op code without its operands: the op port selects an arity the empty
/// input set cannot satisfy.
bool inject_op_without_operands(Build& b) {
  const ModuleDecl* alu = nullptr;
  for (const ModuleDecl& module : b.design.modules) {
    if (module.has_op_port()) {
      alu = &module;
      break;
    }
  }
  if (alu == nullptr) {
    return false;
  }
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const unsigned step = pick(b.rng, 1, b.design.cs_max);
    if (b.module_busy.contains({step, alu->name}) ||
        step + alu->latency > b.design.cs_max) {
      continue;
    }
    const std::int64_t op = alu->kind == ModuleKind::kMacc
                                ? rtl::MaccModule::kOpMac
                                : rtl::alu_ops::kAdd;
    b.plans[step].actions.push_back(
        {alu->name, op, any_write(b, step + alu->latency)});
    b.module_busy.insert({step, alu->name});
    ++b.transfer_count;
    return true;
  }
  return false;
}

unsigned inject_violations(Build& b, unsigned count,
                           const std::string& uninit_reg) {
  unsigned injected = 0;
  for (unsigned i = 0; i < count; ++i) {
    bool done = false;
    switch (pick(b.rng, 0, 3)) {
      case 0:
        done = inject_read_doublebook(b);
        break;
      case 1:
        done = inject_write_doublebook(b);
        break;
      case 2:
        done = inject_uninit_read(b, uninit_reg);
        break;
      default:
        done = inject_op_without_operands(b);
        break;
    }
    injected += done ? 1 : 0;
  }
  return injected;
}

std::string declare_uninit_register(Build& b) {
  const std::string name = "U0";
  if (b.design.find_register(name) == nullptr) {
    b.design.registers.push_back({name, std::nullopt});
  }
  return name;
}

void build_conflict(Build& b) {
  declare_buses(b, pick(b.rng, std::min(3u, b.cfg.max_buses), b.cfg.max_buses));
  const unsigned regs =
      pick(b.rng, std::min(4u, b.cfg.max_registers), b.cfg.max_registers);
  declare_registers(b, regs / 2, regs - regs / 2);
  declare_constants(b, 1);
  b.design.cs_max = pick(b.rng, std::min(6u, b.cfg.max_steps), b.cfg.max_steps);
  std::vector<const ModuleDecl*> palette;
  palette.push_back(&declare_module(b, "ADD0", ModuleKind::kAdd, 1));
  palette.push_back(&declare_module(b, "SUB0", ModuleKind::kSub, 1));
  palette.push_back(&declare_module(b, "ALU0", ModuleKind::kAlu, 1));
  // Reserved for the guaranteed violation; clean activities never touch it.
  const ModuleDecl& victim = declare_module(b, "XV0", ModuleKind::kAdd, 1);
  const std::string uninit = declare_uninit_register(b);

  const unsigned clean = pick(b.rng, 1, 3);
  for (unsigned i = 0; i < clean; ++i) {
    clean_activity(b, pick(b.rng, 1, b.design.cs_max - 1),
                   *pick_of(b.rng, palette));
  }
  // The discipline violation on the reserved module always lands, so a
  // conflict-profile case predicts at least one conflict by construction.
  if (!inject_discipline(b, victim)) {
    StepPlan& plan = b.plans[1];
    const std::string bus = b.design.buses.front().name;
    plan.routes.push_back({RegSel::fixed(b.seed_regs.front()), bus,
                           victim.name, 0});
    plan.actions.push_back(
        {victim.name, std::nullopt,
         ModuleAction::Write{RegSel::fixed(b.sink_regs.front()),
                             b.design.buses.back().name}});
    b.module_busy.insert({1, victim.name});
    ++b.transfer_count;
  }
  inject_violations(b, pick(b.rng, 0, 2), uninit);
}

// --- assembly ----------------------------------------------------------------

std::string sel_text(const RegSel& sel) {
  switch (sel.kind) {
    case RegSel::Kind::kFixed:
      return sel.name;
    case RegSel::Kind::kJFile:
      return std::string("J[") + sel.field + "]";
    case RegSel::Kind::kRFile:
      return std::string("R[") + sel.field + "]";
    case RegSel::Kind::kConstant:
      return "#" + sel.name;
  }
  return "<corrupt>";
}

}  // namespace

std::string Microcode::to_text() const {
  std::ostringstream out;
  out << "addr opc1 opc2    m    j    r\n";
  for (const iks::MicroInstruction& instr : program) {
    out << std::setw(4) << instr.addr << ' ' << std::setw(4) << instr.opc1
        << ' ' << std::setw(4) << instr.opc2 << ' ' << std::setw(4) << instr.m
        << ' ' << std::setw(4) << instr.j << ' ' << std::setw(4) << instr.r
        << '\n';
  }
  for (const auto& [code, routes] : maps.opc1) {
    if (routes.empty()) {
      continue;
    }
    out << "opc1 " << code << ":";
    for (const Route& route : routes) {
      out << " (" << sel_text(route.src) << " -> " << route.bus << " -> "
          << route.module << ".in" << route.port + 1 << ")";
    }
    out << '\n';
  }
  for (const auto& [code, actions] : maps.opc2) {
    if (actions.empty()) {
      continue;
    }
    out << "opc2 " << code << ":";
    for (const ModuleAction& action : actions) {
      out << " (" << action.module;
      if (action.op.has_value()) {
        out << " op=" << *action.op;
      }
      if (action.write.has_value()) {
        out << " -> " << action.write->bus << " -> "
            << sel_text(action.write->dst);
      }
      out << ")";
    }
    out << '\n';
  }
  return out.str();
}

GeneratedCase generate(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Profile resolved = config.profile;
  bool layered = false;
  if (resolved == Profile::kMixed) {
    resolved = static_cast<Profile>(pick(rng, 0, 3));
  }

  Build b(config, rng);
  b.design.name = "gen_" + to_string(resolved) + "_" +
                  std::to_string(config.seed);
  switch (resolved) {
    case Profile::kFabric:
      build_fabric(b);
      break;
    case Profile::kRegfile:
      build_regfile(b);
      break;
    case Profile::kPipeline:
      build_pipeline(b);
      break;
    case Profile::kConflict:
    default:
      build_conflict(b);
      break;
  }
  // A mixed draw occasionally layers violations over the clean base.
  if (config.profile == Profile::kMixed && resolved != Profile::kConflict &&
      chance(rng, 35)) {
    layered =
        inject_violations(b, pick(rng, 1, 2), declare_uninit_register(b)) > 0;
  }

  GeneratedCase result;
  result.seed = config.seed;
  result.profile =
      layered ? Profile::kMixed : resolved;

  result.microcode.maps.opc1[0] = {};
  result.microcode.maps.opc2[0] = {};
  for (auto& [step, plan] : b.plans) {
    const unsigned code1 = plan.routes.empty() ? 0 : step;
    const unsigned code2 = plan.actions.empty() ? 0 : step;
    if (code1 != 0) {
      result.microcode.maps.opc1[step] = plan.routes;
    }
    if (code2 != 0) {
      result.microcode.maps.opc2[step] = plan.actions;
    }
    if (code1 != 0 || code2 != 0) {
      result.microcode.program.push_back(
          {step, code1, code2, plan.m, plan.j, plan.r});
    }
  }

  b.design.transfers = iks::translate_microcode(
      result.microcode.program, result.microcode.maps, b.design);
  common::DiagnosticBag diags;
  if (!transfer::validate(b.design, diags)) {
    throw std::logic_error("generate: seed " + std::to_string(config.seed) +
                           " produced an invalid design:\n" + diags.to_text());
  }
  result.design = std::move(b.design);
  result.oracle = predict_outcomes(result.design);
  return result;
}

transfer::Design shrink(
    const transfer::Design& design,
    const std::function<bool(const transfer::Design&)>& still_fails) {
  transfer::Design current = design;
  bool progress = true;
  while (progress && !current.transfers.empty()) {
    progress = false;
    for (std::size_t i = 0; i < current.transfers.size(); ++i) {
      transfer::Design candidate = current;
      candidate.transfers.erase(candidate.transfers.begin() +
                                static_cast<std::ptrdiff_t>(i));
      common::DiagnosticBag diags;
      if (!transfer::validate(candidate, diags)) {
        continue;
      }
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace ctrtl::gen
