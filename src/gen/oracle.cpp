#include "gen/oracle.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/diagnostics.h"
#include "transfer/mapping.h"
#include "transfer/module_sim.h"
#include "transfer/walk.h"

namespace ctrtl::gen {

namespace {

using rtl::Phase;
using transfer::Endpoint;
using transfer::TransInstance;

/// The oracle's abstract domain: DISC / ILLEGAL / value, with the value
/// class split into "known payload" (constants — the only split the model
/// ever branches on, via the op-port arity lookup) and "unknown payload"
/// (everything data-dependent).
struct AbsValue {
  enum class Kind : std::uint8_t { kDisc, kIllegal, kKnown, kUnknown };
  Kind kind = Kind::kDisc;
  std::int64_t payload = 0;  // meaningful only for kKnown

  static AbsValue disc() { return {}; }
  static AbsValue illegal() { return {Kind::kIllegal, 0}; }
  static AbsValue known(std::int64_t value) { return {Kind::kKnown, value}; }
  static AbsValue unknown() { return {Kind::kUnknown, 0}; }

  [[nodiscard]] bool is_disc() const { return kind == Kind::kDisc; }
  [[nodiscard]] bool is_illegal() const { return kind == Kind::kIllegal; }
  [[nodiscard]] bool is_value() const {
    return kind == Kind::kKnown || kind == Kind::kUnknown;
  }
  [[nodiscard]] rtl::RtValue::Kind classification() const {
    switch (kind) {
      case Kind::kDisc:
        return rtl::RtValue::Kind::kDisc;
      case Kind::kIllegal:
        return rtl::RtValue::Kind::kIllegal;
      case Kind::kKnown:
      case Kind::kUnknown:
        return rtl::RtValue::Kind::kValue;
    }
    return rtl::RtValue::Kind::kIllegal;
  }
};

/// Abstract counterpart of `rtl::resolve_rt`: classification of the wired-or
/// depends only on the classifications of the contributions.
AbsValue resolve_abs(const std::vector<AbsValue>& values) {
  const AbsValue* single = nullptr;
  std::size_t non_disc = 0;
  for (const AbsValue& value : values) {
    if (value.is_illegal()) {
      return AbsValue::illegal();
    }
    if (!value.is_disc()) {
      ++non_disc;
      single = &value;
    }
  }
  if (non_disc >= 2) {
    return AbsValue::illegal();
  }
  return non_disc == 1 ? *single : AbsValue::disc();
}

/// Abstract counterpart of `transfer::ModuleSim`: identical operand
/// discipline, pipeline depth, and poisoning rule, evaluated over AbsValue.
/// Arity lookups delegate to a real ModuleSim so the two can never drift.
class AbsModule {
 public:
  explicit AbsModule(const transfer::ModuleDecl& decl)
      : decl_(&decl), arity_probe_(decl) {
    pipeline_.assign(decl.latency, AbsValue::disc());
  }

  AbsValue evaluate(std::span<const AbsValue> operands, const AbsValue& op) {
    for (const AbsValue& operand : operands) {
      if (operand.is_illegal()) {
        return AbsValue::illegal();
      }
    }
    const bool has_op = decl_->has_op_port();
    unsigned arity = decl_->num_inputs();
    if (has_op) {
      if (op.is_illegal()) {
        return AbsValue::illegal();
      }
      if (op.is_disc()) {
        for (const AbsValue& operand : operands) {
          if (!operand.is_disc()) {
            return AbsValue::illegal();
          }
        }
        // MACC holds its accumulator when idle — a value, never DISC.
        return decl_->kind == transfer::ModuleKind::kMacc ? AbsValue::unknown()
                                                          : AbsValue::disc();
      }
      if (op.kind != AbsValue::Kind::kKnown) {
        throw std::domain_error(
            "conflict oracle: module '" + decl_->name +
            "' op port driven by a payload that is not statically known — "
            "outside the tuple/fault-plan model class");
      }
      arity = arity_probe_.arity_for(op.payload);
    }
    unsigned present = 0;
    for (unsigned i = 0; i < arity && i < operands.size(); ++i) {
      if (operands[i].is_value()) {
        ++present;
      }
    }
    if (present == 0 && !has_op) {
      return AbsValue::disc();
    }
    if (present != arity) {
      return AbsValue::illegal();
    }
    return AbsValue::unknown();
  }

  AbsValue step(std::span<const AbsValue> operands, const AbsValue& op) {
    if (decl_->latency == 0) {
      out_ = evaluate(operands, op);
      return out_;
    }
    out_ = pipeline_.back();
    const AbsValue next =
        poisoned_ ? AbsValue::illegal() : evaluate(operands, op);
    pipeline_.pop_back();
    pipeline_.push_front(next);
    if (next.is_illegal()) {
      poisoned_ = true;
    }
    return out_;
  }

  [[nodiscard]] const AbsValue& out() const { return out_; }
  [[nodiscard]] const transfer::ModuleDecl& decl() const { return *decl_; }

 private:
  const transfer::ModuleDecl* decl_;
  transfer::ModuleSim arity_probe_;
  std::deque<AbsValue> pipeline_;  // front() newest; size == latency
  AbsValue out_ = AbsValue::disc();
  bool poisoned_ = false;
};

}  // namespace

verify::OutcomePrediction predict_outcomes(
    const transfer::Design& design,
    std::span<const TransInstance> instances,
    const std::map<std::string, std::int64_t>& inputs) {
  common::DiagnosticBag diags;
  if (!transfer::validate(design, diags)) {
    throw std::invalid_argument("conflict oracle: design does not validate:\n" +
                                diags.to_text());
  }

  std::map<std::string, AbsValue> registers;
  for (const transfer::RegisterDecl& reg : design.registers) {
    registers[reg.name] = reg.initial.has_value() ? AbsValue::known(*reg.initial)
                                                  : AbsValue::disc();
  }
  std::map<std::string, AbsValue> constants;
  for (const transfer::ConstantDecl& constant : design.constants) {
    constants[constant.name] = AbsValue::known(constant.value);
  }
  std::map<std::string, AbsValue> input_values;
  for (const transfer::InputDecl& input : design.inputs) {
    const auto it = inputs.find(input.name);
    input_values[input.name] =
        it == inputs.end() ? AbsValue::disc() : AbsValue::known(it->second);
  }
  std::map<std::string, AbsModule> modules;
  for (const transfer::ModuleDecl& module : design.modules) {
    modules.emplace(module.name, AbsModule(module));
  }

  const transfer::InstanceWalker walker(instances, design.cs_max);

  verify::OutcomePrediction prediction;

  std::map<std::string, AbsValue> visible;

  const auto source_value = [&](const Endpoint& source) -> AbsValue {
    switch (source.kind) {
      case Endpoint::Kind::kRegisterOut:
        return registers.at(source.resource);
      case Endpoint::Kind::kConstant: {
        const auto it = constants.find(source.resource);
        if (it != constants.end()) {
          return it->second;
        }
        std::int64_t code = 0;
        if (transfer::parse_op_constant_name(source.resource, code)) {
          return AbsValue::known(code);
        }
        throw std::logic_error("conflict oracle: unknown constant '" +
                               source.resource + "'");
      }
      case Endpoint::Kind::kInput:
        return input_values.at(source.resource);
      case Endpoint::Kind::kModuleOut:
        return modules.at(source.resource).out();
      case Endpoint::Kind::kBus: {
        const auto it = visible.find(source.resource);
        return it == visible.end() ? AbsValue::disc() : it->second;
      }
      default:
        throw std::logic_error("conflict oracle: bad source endpoint");
    }
  };

  for (unsigned step = 1; step <= design.cs_max; ++step) {
    for (int phase_index = 0; phase_index < rtl::kPhasesPerStep; ++phase_index) {
      const Phase phase = rtl::phase_from_index(phase_index);

      std::map<std::string, std::vector<AbsValue>> contributions;
      if (phase != rtl::kPhaseLow) {
        for (const TransInstance* instance :
             walker.fires(step, rtl::pred(phase))) {
          contributions[to_string(instance->sink)].push_back(
              source_value(instance->source));
        }
      }
      std::map<std::string, AbsValue> next_visible;
      for (const auto& [sink, values] : contributions) {
        next_visible[sink] = resolve_abs(values);
      }
      for (const auto& [sink, value] : next_visible) {
        if (value.is_disc()) {
          prediction.disc_sites.push_back(verify::DiscSite{sink, step, phase});
        }
        if (!value.is_illegal()) {
          continue;
        }
        const auto prev_it = visible.find(sink);
        const bool was_illegal =
            prev_it != visible.end() && prev_it->second.is_illegal();
        if (!was_illegal) {
          prediction.conflicts.push_back(rtl::Conflict{sink, step, phase});
        }
      }
      visible = std::move(next_visible);

      if (phase == Phase::kCm) {
        for (auto& [name, module] : modules) {
          std::vector<AbsValue> operands(module.decl().num_inputs(),
                                         AbsValue::disc());
          for (unsigned port = 0; port < operands.size(); ++port) {
            const auto it =
                visible.find(to_string(Endpoint::module_in(name, port)));
            if (it != visible.end()) {
              operands[port] = it->second;
            }
          }
          AbsValue op = AbsValue::disc();
          if (module.decl().has_op_port()) {
            const auto it = visible.find(to_string(Endpoint::module_op(name)));
            if (it != visible.end()) {
              op = it->second;
            }
          }
          module.step(operands, op);
        }
      } else if (phase == Phase::kCr) {
        for (auto& [name, value] : registers) {
          const auto it = visible.find(to_string(Endpoint::register_in(name)));
          if (it != visible.end() && !it->second.is_disc()) {
            value = it->second;
          }
        }
      }
    }
    visible.clear();
  }

  std::sort(prediction.conflicts.begin(), prediction.conflicts.end(),
            [](const rtl::Conflict& a, const rtl::Conflict& b) {
              return std::tuple(a.step, a.phase, a.signal) <
                     std::tuple(b.step, b.phase, b.signal);
            });
  std::sort(prediction.disc_sites.begin(), prediction.disc_sites.end());
  for (const auto& [name, value] : registers) {
    prediction.registers[name] = value.classification();
  }
  return prediction;
}

verify::OutcomePrediction predict_outcomes(
    const transfer::Design& design,
    const std::map<std::string, std::int64_t>& inputs) {
  const std::vector<TransInstance> instances =
      transfer::to_instances(design.transfers);
  return predict_outcomes(design, instances, inputs);
}

verify::OutcomePrediction predict_outcomes(
    const fault::FaultedDesign& faulted,
    const std::map<std::string, std::int64_t>& inputs) {
  return predict_outcomes(faulted.design, faulted.instances, inputs);
}

}  // namespace ctrtl::gen
