#include "gen/corpus.h"

#include <chrono>
#include <exception>

#include "common/diagnostics.h"
#include "fault/inject.h"
#include "gen/oracle.h"
#include "verify/equivalence.h"
#include "verify/oracle_check.h"

namespace ctrtl::gen {

std::vector<fault::FaultPlan> standard_fault_plans(
    const transfer::Design& design) {
  std::vector<fault::FaultPlan> plans;
  if (!design.registers.empty()) {
    fault::FaultPlan stuck;
    stuck.faults.push_back({fault::FaultKind::kStuckDisc,
                            design.registers.front().name, 0, std::nullopt, 0});
    plans.push_back(std::move(stuck));
  }
  if (!design.buses.empty()) {
    fault::FaultPlan force;
    force.faults.push_back({fault::FaultKind::kForceBus,
                            design.buses.front().name,
                            std::max(1u, design.cs_max / 2), rtl::Phase::kRa,
                            7});
    plans.push_back(std::move(force));
  }
  return plans;
}

CorpusReport run_corpus(const CorpusOptions& options) {
  CorpusReport report;
  const auto start = std::chrono::steady_clock::now();

  for (unsigned i = 0; i < options.count; ++i) {
    const std::uint64_t seed = options.first_seed + i;
    GeneratorConfig config = options.knobs;
    config.seed = seed;
    config.profile = options.profile;

    GeneratedCase generated;
    try {
      generated = generate(config);
    } catch (const std::exception& error) {
      report.failures.push_back({seed, "generate", error.what(), 0});
      continue;
    }
    ++report.cases;
    report.total_transfers += generated.design.transfers.size();
    report.predicted_conflicts += generated.oracle.conflicts.size();
    report.predicted_disc_sites += generated.oracle.disc_sites.size();

    if (options.verify_engines) {
      const verify::CheckReport engines =
          verify::check_engine_equivalence(generated.design);
      if (!engines.consistent()) {
        report.failures.push_back({seed, "engines", engines.to_text(), 0});
        continue;
      }
    }
    if (options.check_oracle) {
      const verify::CheckReport oracle =
          verify::check_prediction(generated.design, generated.oracle);
      if (!oracle.consistent()) {
        // 1-minimal reproduction: drop transfers while the oracle still
        // disagrees with the simulation.
        const transfer::Design minimal = shrink(
            generated.design, [](const transfer::Design& candidate) {
              try {
                return !verify::check_prediction(candidate,
                                                 predict_outcomes(candidate))
                            .consistent();
              } catch (const std::exception&) {
                return true;  // crashing is failing too
              }
            });
        report.failures.push_back(
            {seed, "oracle", oracle.to_text(),
             static_cast<unsigned>(minimal.transfers.size())});
        continue;
      }
    }

    if (options.fault_every != 0 && i % options.fault_every == 0) {
      for (const fault::FaultPlan& plan :
           standard_fault_plans(generated.design)) {
        common::DiagnosticBag diags;
        const auto faulted = fault::apply_plan(generated.design, plan, diags);
        if (!faulted.has_value()) {
          report.failures.push_back(
              {seed, "fault:" + to_text(plan), diags.to_text(), 0});
          continue;
        }
        ++report.faulted_runs;
        if (options.verify_engines) {
          const verify::CheckReport engines =
              verify::check_engine_equivalence(*faulted);
          if (!engines.consistent()) {
            report.failures.push_back(
                {seed, "fault:" + to_text(plan), engines.to_text(), 0});
            continue;
          }
        }
        if (options.check_oracle) {
          const verify::CheckReport oracle = verify::check_prediction(
              *faulted, predict_outcomes(*faulted));
          if (!oracle.consistent()) {
            report.failures.push_back(
                {seed, "fault:" + to_text(plan), oracle.to_text(), 0});
          }
        }
      }
    }
  }

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return report;
}

}  // namespace ctrtl::gen
