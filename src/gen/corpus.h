#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "gen/generator.h"

namespace ctrtl::gen {

/// Corpus sweep configuration: seeds [first_seed, first_seed + count) are
/// generated under `profile` and pushed through the enabled checks.
struct CorpusOptions {
  std::uint64_t first_seed = 1;
  unsigned count = 25;
  Profile profile = Profile::kMixed;
  GeneratorConfig knobs;  // seed/profile fields overridden per case
  /// Three-way engine equivalence (event kernel / compiled / lanes).
  bool verify_engines = true;
  /// Oracle-vs-simulation agreement (conflicts, DISC sites, registers).
  bool check_oracle = true;
  /// Every Nth case is additionally swept under the standard fault plans,
  /// re-predicted on the faulted stream. 0 disables the sweep.
  unsigned fault_every = 0;
};

struct CorpusFailure {
  std::uint64_t seed = 0;
  std::string phase;   // "engines", "oracle", "fault:<plan>", "generate"
  std::string detail;
  /// Transfer count of the 1-minimal shrunk reproduction (clean oracle
  /// failures only; 0 when shrinking was not applicable).
  unsigned shrunk_transfers = 0;
};

struct CorpusReport {
  unsigned cases = 0;
  unsigned faulted_runs = 0;
  std::size_t total_transfers = 0;
  std::size_t predicted_conflicts = 0;
  std::size_t predicted_disc_sites = 0;
  double wall_ms = 0.0;
  std::vector<CorpusFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] double cases_per_second() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(cases) / wall_ms : 0.0;
  }
};

/// The two standard fault plans composed with generated cases: a stuck-DISC
/// register (reads vanish) and a forced bus contribution (injected
/// contention) — two distinct fault kinds, as the corpus contract requires.
[[nodiscard]] std::vector<fault::FaultPlan> standard_fault_plans(
    const transfer::Design& design);

/// Runs the sweep. Every failure carries the reproducing seed; a clean-case
/// oracle failure is additionally shrunk to a 1-minimal transfer set.
[[nodiscard]] CorpusReport run_corpus(const CorpusOptions& options);

}  // namespace ctrtl::gen
