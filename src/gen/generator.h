#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "iks/microcode.h"
#include "transfer/design.h"
#include "verify/oracle_check.h"

namespace ctrtl::gen {

/// Structural families the generator emits. Each profile stresses a
/// different axis of the model:
///   kFabric   — multi-bus routing fabrics: several buses, fixed-function
///               and ALU units, conflict-free bus allocation per step.
///   kRegfile  — register-file indexing: J/R file selectors resolved
///               through microinstruction fields, MACC accumulation chains.
///   kPipeline — deep pipelined units (latency 2..4) with overlapping
///               in-flight operations; write steps trail read steps.
///   kConflict — deliberately conflicting schedules: double-booked buses,
///               operand-discipline violations, uninitialized reads; the
///               oracle must predict every resulting ILLEGAL/DISC site.
///   kMixed    — seed-driven choice among the above, occasionally layering
///               conflict injections over a clean base. The corpus default.
enum class Profile : std::uint8_t {
  kFabric,
  kRegfile,
  kPipeline,
  kConflict,
  kMixed,
};

[[nodiscard]] std::string to_string(Profile profile);
[[nodiscard]] bool parse_profile(const std::string& text, Profile& profile);

struct GeneratorConfig {
  std::uint64_t seed = 1;
  Profile profile = Profile::kMixed;
  /// Upper bounds on the generated structure; the seed draws actual sizes.
  unsigned max_registers = 8;
  unsigned max_buses = 5;
  unsigned max_steps = 12;
  /// 0 suppresses all activity: resources are declared but no transfer is
  /// scheduled (the degenerate 0-transfer case must survive every layer).
  unsigned max_transfers = 16;
};

/// The generated microprogram: per-case code maps plus the instruction rows,
/// in the representation `iks::translate_microcode` consumes. The design's
/// transfer schedule is *produced by* translating this program, so microcode
/// and schedule agree by construction.
struct Microcode {
  iks::CodeMaps maps;
  std::vector<iks::MicroInstruction> program;

  /// Paper-style listing: the store table (addr opc1 opc2 m j r) followed
  /// by the code-map legend.
  [[nodiscard]] std::string to_text() const;
};

struct GeneratedCase {
  transfer::Design design;
  Microcode microcode;
  /// The conflict oracle's prediction for the canonical instance stream.
  verify::OutcomePrediction oracle;
  /// Profile actually realized (kMixed resolves to a concrete family).
  Profile profile = Profile::kMixed;
  std::uint64_t seed = 0;
};

/// Deterministic: equal configs yield byte-identical cases. The design
/// always validates; clean profiles (fabric/regfile/pipeline) predict zero
/// conflicts and zero DISC sites, kConflict predicts at least one conflict.
[[nodiscard]] GeneratedCase generate(const GeneratorConfig& config);

/// Greedy 1-minimal shrink for failing cases: repeatedly removes single
/// transfers while `still_fails(candidate)` holds and the candidate still
/// validates, until no single removal preserves the failure. The predicate
/// must be deterministic.
[[nodiscard]] transfer::Design shrink(
    const transfer::Design& design,
    const std::function<bool(const transfer::Design&)>& still_fails);

}  // namespace ctrtl::gen
