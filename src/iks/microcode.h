#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "transfer/design.h"

namespace ctrtl::iks {

/// A register selector in a code map: a fixed register, a file entry
/// indexed by a microinstruction field (j, r, or m), or a constant source.
struct RegSel {
  enum class Kind : std::uint8_t { kFixed, kJFile, kRFile, kConstant };
  Kind kind = Kind::kFixed;
  std::string name;  // fixed register / constant name
  char field = 'j';  // which instruction field indexes the file ('j','r','m')

  [[nodiscard]] static RegSel fixed(std::string reg);
  [[nodiscard]] static RegSel j_file(char field = 'j');
  [[nodiscard]] static RegSel r_file(char field = 'r');
  [[nodiscard]] static RegSel constant(std::string name);
};

/// One routing micro-operation (what an opc1 code encodes): move a source
/// register onto a bus and into a module input port during the read phases.
struct Route {
  RegSel src;
  std::string bus;
  std::string module;
  unsigned port = 0;
};

/// One module action (what an opc2 code encodes): the operation a unit
/// performs this step and, optionally, where its result is written back —
/// the section 3 extension: "a register transfer also defines the operation
/// to be performed by the module".
struct ModuleAction {
  std::string module;
  std::optional<std::int64_t> op;  // op-port code; nullopt for fixed units
  /// Destination of the unit's result (write step = read step + latency).
  struct Write {
    RegSel dst;
    std::string bus;
  };
  std::optional<Write> write;
};

/// One row of the microprogram store, mirroring the paper's table columns
///   addr cycle opc1 opc2 m J R1 M/R.
struct MicroInstruction {
  unsigned addr = 0;   // microprogram store address; executes in step addr
  unsigned opc1 = 0;   // routing code
  unsigned opc2 = 0;   // operation code
  unsigned m = 0;      // auxiliary index field (M/R write index, 2nd J index)
  unsigned j = 0;      // J-file index
  unsigned r = 0;      // R-file index
};

/// The code maps of the microprogram ("For opc1 and opc2 code maps exist").
struct CodeMaps {
  std::map<unsigned, std::vector<Route>> opc1;
  std::map<unsigned, std::vector<ModuleAction>> opc2;
};

/// The shipped code maps: the routing/operation patterns used by the IKS
/// microprogram, plus the paper's worked example (opc1 = 20, opc2 = 2 at
/// store address 7: "(J[6],BusA,y2,1), (Y,direct,x2,1)" with the flag set).
[[nodiscard]] const CodeMaps& iks_code_maps();

/// The microcode-to-register-transfer translator — the reimplementation of
/// the paper's "C program, that translates the microcode tables ... to
/// transfer process instances". Each instruction executes in control step
/// `addr`; latencies place result writes automatically.
///
/// Throws std::invalid_argument for unknown op codes or malformed rows.
[[nodiscard]] std::vector<transfer::RegisterTransfer> translate_microcode(
    std::span<const MicroInstruction> program, const CodeMaps& maps,
    const transfer::Design& resources);

}  // namespace ctrtl::iks
