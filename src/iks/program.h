#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "iks/microcode.h"
#include "rtl/model.h"

namespace ctrtl::iks {

/// Inputs of one inverse-kinematics iteration, Q16.16 fixed-point.
struct IksInputs {
  std::int64_t theta1 = 0;  // current joint angles (radians)
  std::int64_t theta2 = 0;
  std::int64_t px = 0;      // target position
  std::int64_t py = 0;
  std::int64_t l1 = 0;      // link lengths
  std::int64_t l2 = 0;
};

/// Observable results of one iteration (register contents after the run).
struct IksOutputs {
  std::int64_t theta1_next = 0;  // updated joint angles (R4, R5)
  std::int64_t theta2_next = 0;
  std::int64_t ee_x = 0;         // forward-kinematics position (written into
  std::int64_t ee_y = 0;         // R4/R5 mid-run; preserved in EX/EY derivation)
  std::int64_t err_x = 0;        // position error (R6, R7)
  std::int64_t err_y = 0;
  std::int64_t flag = 0;         // completion flag F (1.0 fixed-point)
};

/// The IKS microprogram: one Jacobian-transpose iteration of the two-link
/// planar arm
///
///   (x, y)  = (l1 cos t1 + l2 cos(t1+t2),  l1 sin t1 + l2 sin(t1+t2))
///   (ex,ey) = (px - x, py - y)
///   dt1     = (x*ey - y*ex)                        >> k
///   dt2     = (l2 cos(t1+t2)*ey - l2 sin(t1+t2)*ex) >> k
///   t'      = t + dt
///
/// expressed as 30 microinstructions over the IKS resources: CORDIC for the
/// trigonometry, MACC for the position dot products, MULT for the Jacobian
/// products, and the ALU adders (including the `Rshift` gain scaling) for
/// updates. This stands in for the proprietary Leung & Shanblatt microcode;
/// the translation pipeline (tables -> code maps -> 9-tuples -> TRANS
/// instances) is exactly the paper's.
[[nodiscard]] std::vector<MicroInstruction> iks_program();

/// Control steps needed by `iks_program` (its cs_max).
[[nodiscard]] unsigned iks_program_steps();

/// The paper's worked example row: store address 7 with opc1 = 20,
/// opc2 = 2 (plus the flag-source route), decoding to the transfers
/// "(J[6],BusA,y2,...)", "(Y,direct,x2,...)" and F := 1.
[[nodiscard]] MicroInstruction iks_paper_example_row();

/// Builds the complete executable model: resources + translated program,
/// with the inputs preloaded into the J file
///   J0=theta1 J1=theta2 J2=px J3=py J4=l1 J5=l2.
[[nodiscard]] std::unique_ptr<rtl::RtModel> build_iks_model(const IksInputs& inputs);

/// The same, as a Design (for the reference evaluator / clocked back end /
/// benches).
[[nodiscard]] transfer::Design iks_design(const IksInputs& inputs);

/// Reads the outputs back from a finished model run.
[[nodiscard]] IksOutputs read_outputs(rtl::RtModel& model);

}  // namespace ctrtl::iks
