#pragma once

#include <cstdint>
#include <vector>

#include "iks/program.h"

namespace ctrtl::iks {

/// Algorithmic-level model of one IKS iteration: the same fixed-point
/// operations the microprogram performs (identical CORDIC kernel, identical
/// multiply rounding), so the register-transfer model must match it
/// **bit-exactly**. This is the "description at the algorithmic level" the
/// paper verifies the RT model against (bottom-up evaluation).
struct GoldenTrace {
  std::int64_t c1 = 0, s1 = 0;    // cos/sin theta1
  std::int64_t c12 = 0, s12 = 0;  // cos/sin (theta1+theta2)
  std::int64_t x = 0, y = 0;      // forward kinematics
  std::int64_t ex = 0, ey = 0;    // position error
  std::int64_t dt1 = 0, dt2 = 0;  // Jacobian-transpose updates (shifted)
  std::int64_t theta1_next = 0;
  std::int64_t theta2_next = 0;
};

[[nodiscard]] GoldenTrace golden_iteration(const IksInputs& inputs);

/// Runs `iterations` golden iterations, feeding each result back as the
/// next angles. Returns the per-iteration traces.
[[nodiscard]] std::vector<GoldenTrace> golden_iterate(IksInputs inputs,
                                                      unsigned iterations);

/// Euclidean position error |target - fk(theta)| in fixed-point units,
/// evaluated with the same fixed-point kernels.
[[nodiscard]] double position_error(const IksInputs& inputs, std::int64_t theta1,
                                    std::int64_t theta2);

}  // namespace ctrtl::iks
