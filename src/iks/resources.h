#pragma once

#include "transfer/design.h"

namespace ctrtl::iks {

/// Fixed-point format of the IKS datapath (Q16.16).
inline constexpr unsigned kFracBits = 16;
/// CORDIC iteration depth.
inline constexpr unsigned kCordicIterations = 24;
/// Gain shift of the Jacobian-transpose update (`Rshift(x, k)`).
inline constexpr unsigned kGainShift = 2;

/// The resource set of the IKS chip after fig. 3 of the paper (Leung &
/// Shanblatt's inverse-kinematics ASIC), adapted to this library's module
/// repertoire:
///
///  - register files `J[0..6]` (joint/pose parameters), `R[0..7]`
///    (working store), `M[0..3]` (spare, kept for structural fidelity);
///  - dedicated registers `P, X, Y, Z` (unit result latches), `zang`
///    (CORDIC angle), `x2, y2` (the paper's worked-example destinations),
///    and the flag `F`;
///  - buses `BusA`, `BusB`, write-back buses shared phase-disjointly, and
///    the direct-link buses `LA/LB` with their COPY modules (`CPZ`, `CPY`,
///    `CPX`, `CPF`) — the paper's recipe: "two extra buses and one extra
///    module, which just copies the input to the output";
///  - functional units: the 2-stage pipelined multiplier `MULT`, the
///    non-pipelined (latency 0) ALU adders `ZADD/XADD/YADD` with operation
///    select (the section 3 extension), the multiplier/accumulator `MACC`,
///    and the `CORDIC` core.
///
/// Register preloads (inputs) are left DISC; the program loader sets them.
[[nodiscard]] transfer::Design iks_resources(unsigned cs_max);

/// Canonical register names.
[[nodiscard]] std::string j_reg(unsigned index);
[[nodiscard]] std::string r_reg(unsigned index);
[[nodiscard]] std::string m_reg(unsigned index);

}  // namespace ctrtl::iks
