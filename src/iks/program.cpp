#include "iks/program.h"

#include "iks/resources.h"
#include "transfer/build.h"

namespace ctrtl::iks {

std::vector<MicroInstruction> iks_program() {
  // Register plan:
  //   J0=t1 J1=t2 J2=px J3=py J4=l1 J5=l2 (inputs)
  //   R0=cos t1 / temp   R1=sin t1 / dt1   R2=cos(t1+t2) / temp
  //   R3=sin(t1+t2)/dt2  R4=x / t1'        R5=y / t2'
  //   R6=ex  R7=ey       P,X,Y,Z = unit result latches
  //
  // Fields: {addr, opc1, opc2, m, j, r}.
  return {
      // trigonometry ----------------------------------------------------------
      {1, 1, 1, 0, 0, 0},    // zang := J0 (t1)
      {2, 2, 3, 0, 0, 0},    // R0 := cos(zang)          [written step 3]
      {3, 2, 4, 0, 0, 1},    // R1 := sin(zang)          [step 4]
      {4, 3, 5, 1, 0, 0},    // Z := J0 + J1 (t1 + t2)
      {5, 4, 1, 0, 0, 0},    // zang := Z
      {6, 2, 3, 0, 0, 2},    // R2 := cos(zang)          [step 7]
      {7, 2, 4, 0, 0, 3},    // R3 := sin(zang)          [step 8]
      // forward kinematics ----------------------------------------------------
      {8, 0, 6, 0, 0, 0},    // MACC clear
      {9, 5, 7, 0, 4, 0},    // mac(l1, cos t1)
      {10, 5, 8, 4, 5, 2},   // mac(l2, cos(t1+t2)); R4 := acc  [step 11]
      {11, 0, 6, 0, 0, 0},   // MACC clear
      {12, 5, 7, 0, 4, 1},   // mac(l1, sin t1)
      {13, 5, 8, 5, 5, 3},   // mac(l2, sin(t1+t2)); R5 := acc  [step 14]
      // position error --------------------------------------------------------
      {14, 6, 9, 6, 2, 4},   // R6 := J2 - R4 (ex = px - x)
      {15, 6, 9, 7, 3, 5},   // R7 := J3 - R5 (ey = py - y)
      // Jacobian-transpose products --------------------------------------------
      {16, 7, 10, 7, 0, 4},  // P := R4 * R7 (x * ey)    [step 18]
      {17, 7, 11, 6, 0, 5},  // X := R5 * R6 (y * ex)    [step 19]
      {18, 8, 12, 0, 5, 3},  // Y := J5 * R3 (l2 sin)    [step 20]
      {19, 8, 13, 0, 5, 2},  // Z := J5 * R2 (l2 cos)    [step 21]
      {20, 9, 14, 0, 0, 0},  // R0 := P - X
      {21, 10, 15, 1, 0, 0}, // R1 := R0 >> k (dt1)
      {22, 11, 10, 0, 0, 7}, // P := Z * R7              [step 24]
      {23, 12, 11, 0, 0, 6}, // X := Y * R6              [step 25]
      {24, 0, 0, 0, 0, 0},   // (pipeline drain)
      {25, 0, 0, 0, 0, 0},   // (pipeline drain)
      {26, 9, 14, 2, 0, 0},  // R2 := P - X
      {27, 10, 15, 3, 0, 2}, // R3 := R2 >> k (dt2)
      // joint update ----------------------------------------------------------
      {28, 13, 16, 4, 0, 1}, // R4 := J0 + R1 (t1')
      {29, 13, 16, 5, 1, 3}, // R5 := J1 + R3 (t2')
      {30, 14, 17, 0, 0, 0}, // F := 1 (setf)
  };
}

unsigned iks_program_steps() {
  return 30;
}

MicroInstruction iks_paper_example_row() {
  // "addr 7: opc1 20, opc2 2" with J index 6 — decodes to
  // (J[6],BusA,y2,...), (Y,direct,x2,...).
  return MicroInstruction{7, 20, 2, 0, 6, 0};
}

transfer::Design iks_design(const IksInputs& inputs) {
  transfer::Design design = iks_resources(iks_program_steps());
  const std::vector<MicroInstruction> program = iks_program();
  design.transfers = translate_microcode(program, iks_code_maps(), design);

  // Preload the J file with the iteration inputs.
  const std::map<std::string, std::int64_t> preload = {
      {j_reg(0), inputs.theta1}, {j_reg(1), inputs.theta2},
      {j_reg(2), inputs.px},     {j_reg(3), inputs.py},
      {j_reg(4), inputs.l1},     {j_reg(5), inputs.l2},
  };
  for (transfer::RegisterDecl& reg : design.registers) {
    const auto it = preload.find(reg.name);
    if (it != preload.end()) {
      reg.initial = it->second;
    }
  }
  return design;
}

std::unique_ptr<rtl::RtModel> build_iks_model(const IksInputs& inputs) {
  return transfer::build_model(iks_design(inputs));
}

namespace {

std::int64_t reg_payload(rtl::RtModel& model, const std::string& name) {
  const rtl::RtValue value = model.find_register(name)->value();
  return value.has_value() ? value.payload() : 0;
}

}  // namespace

IksOutputs read_outputs(rtl::RtModel& model) {
  IksOutputs outputs;
  outputs.theta1_next = reg_payload(model, r_reg(4));
  outputs.theta2_next = reg_payload(model, r_reg(5));
  outputs.err_x = reg_payload(model, r_reg(6));
  outputs.err_y = reg_payload(model, r_reg(7));
  // The forward-kinematics position is recovered from target - error (its
  // own registers are reused for the joint update late in the program).
  outputs.ee_x = reg_payload(model, j_reg(2)) - outputs.err_x;
  outputs.ee_y = reg_payload(model, j_reg(3)) - outputs.err_y;
  outputs.flag = reg_payload(model, "F");
  return outputs;
}

}  // namespace ctrtl::iks
