#include "iks/microcode.h"

#include <stdexcept>

#include "iks/resources.h"
#include "rtl/modules.h"

namespace ctrtl::iks {

RegSel RegSel::fixed(std::string reg) {
  return RegSel{Kind::kFixed, std::move(reg), 'j'};
}
RegSel RegSel::j_file(char field) {
  return RegSel{Kind::kJFile, {}, field};
}
RegSel RegSel::r_file(char field) {
  return RegSel{Kind::kRFile, {}, field};
}
RegSel RegSel::constant(std::string name) {
  return RegSel{Kind::kConstant, std::move(name), 'j'};
}

namespace {

using rtl::alu_ops::kAdd;
using rtl::alu_ops::kRshiftBase;
using rtl::alu_ops::kSub;

CodeMaps build_code_maps() {
  CodeMaps maps;

  // ----- opc1: routing patterns ---------------------------------------------
  // 0: no routing.
  maps.opc1[0] = {};
  // 1: J[j] -> BusA -> CPZ (register move source).
  maps.opc1[1] = {{RegSel::j_file(), "BusA", "CPZ", 0}};
  // 2: zang -> BusA -> CORDIC.
  maps.opc1[2] = {{RegSel::fixed("zang"), "BusA", "CORDIC", 0}};
  // 3: J[j] -> BusA -> ZADD.in1, J[m] -> BusB -> ZADD.in2.
  maps.opc1[3] = {{RegSel::j_file('j'), "BusA", "ZADD", 0},
                  {RegSel::j_file('m'), "BusB", "ZADD", 1}};
  // 4: Z -> BusA -> CPZ.
  maps.opc1[4] = {{RegSel::fixed("Z"), "BusA", "CPZ", 0}};
  // 5: J[j] -> BusA -> MACC.in1, R[r] -> BusB -> MACC.in2.
  maps.opc1[5] = {{RegSel::j_file(), "BusA", "MACC", 0},
                  {RegSel::r_file(), "BusB", "MACC", 1}};
  // 6: J[j] -> BusA -> ZADD.in1, R[r] -> BusB -> ZADD.in2.
  maps.opc1[6] = {{RegSel::j_file(), "BusA", "ZADD", 0},
                  {RegSel::r_file(), "BusB", "ZADD", 1}};
  // 7: R[r] -> BusA -> MULT.in1, R[m] -> BusB -> MULT.in2 (m as R index).
  maps.opc1[7] = {{RegSel::r_file('r'), "BusA", "MULT", 0},
                  {RegSel::r_file('m'), "BusB", "MULT", 1}};
  // 8: J[j] -> BusA -> MULT.in1, R[r] -> BusB -> MULT.in2.
  maps.opc1[8] = {{RegSel::j_file(), "BusA", "MULT", 0},
                  {RegSel::r_file(), "BusB", "MULT", 1}};
  // 9: P -> BusA -> ZADD.in1, X -> BusB -> ZADD.in2.
  maps.opc1[9] = {{RegSel::fixed("P"), "BusA", "ZADD", 0},
                  {RegSel::fixed("X"), "BusB", "ZADD", 1}};
  // 10: R[r] -> BusA -> XADD.in1 (shift operand).
  maps.opc1[10] = {{RegSel::r_file(), "BusA", "XADD", 0}};
  // 11: Z -> BusA -> MULT.in1, R[r] -> BusB -> MULT.in2.
  maps.opc1[11] = {{RegSel::fixed("Z"), "BusA", "MULT", 0},
                   {RegSel::r_file(), "BusB", "MULT", 1}};
  // 12: Y -> BusA -> MULT.in1, R[r] -> BusB -> MULT.in2.
  maps.opc1[12] = {{RegSel::fixed("Y"), "BusA", "MULT", 0},
                   {RegSel::r_file(), "BusB", "MULT", 1}};
  // 13: J[j] -> BusA -> YADD.in1, R[r] -> BusB -> YADD.in2.
  maps.opc1[13] = {{RegSel::j_file(), "BusA", "YADD", 0},
                   {RegSel::r_file(), "BusB", "YADD", 1}};
  // 14: #one -> BusA -> CPF (flag source).
  maps.opc1[14] = {{RegSel::constant("one"), "BusA", "CPF", 0}};
  // 20: the paper's worked example (store address 7, opc1 = 20):
  //     J[j] over BusA towards y2, Y over a direct link towards x2. The
  //     direct link is realized per the paper's own recipe with the extra
  //     bus LA and the copy modules CPY/CPX.
  maps.opc1[20] = {{RegSel::j_file(), "BusA", "CPY", 0},
                   {RegSel::fixed("Y"), "LA", "CPX", 0}};

  // ----- opc2: module operations --------------------------------------------
  maps.opc2[0] = {};
  // 1: CPZ result -> zang (move completion over BusB).
  maps.opc2[1] = {{"CPZ", std::nullopt,
                   ModuleAction::Write{RegSel::fixed("zang"), "BusB"}}};
  // 2: the paper's worked example (opc2 = 2): complete the y2/x2 moves and
  //    set the flag F := 1 (the paper's `setf`; the flag source is the
  //    constant `one` routed through CPF by opc1 = 14 in the same step of
  //    the example program, see iks_paper_example_program()).
  maps.opc2[2] = {
      {"CPY", std::nullopt, ModuleAction::Write{RegSel::fixed("y2"), "BusB"}},
      {"CPX", std::nullopt, ModuleAction::Write{RegSel::fixed("x2"), "LB"}},
  };
  // 3/4: CORDIC cos/sin -> R[r] via BusB.
  maps.opc2[3] = {{"CORDIC", rtl::CordicModule::kOpCos,
                   ModuleAction::Write{RegSel::r_file('r'), "BusB"}}};
  maps.opc2[4] = {{"CORDIC", rtl::CordicModule::kOpSin,
                   ModuleAction::Write{RegSel::r_file('r'), "BusB"}}};
  // 5: ZADD add -> Z via BusA.
  maps.opc2[5] = {{"ZADD", kAdd, ModuleAction::Write{RegSel::fixed("Z"), "BusA"}}};
  // 6: MACC clear.
  maps.opc2[6] = {{"MACC", rtl::MaccModule::kOpClear, std::nullopt}};
  // 7: MACC multiply-accumulate, no write-back.
  maps.opc2[7] = {{"MACC", rtl::MaccModule::kOpMac, std::nullopt}};
  // 8: MACC multiply-accumulate and write the accumulator to R[m] via BusB.
  maps.opc2[8] = {{"MACC", rtl::MaccModule::kOpMac,
                   ModuleAction::Write{RegSel::r_file('m'), "BusB"}}};
  // 9: ZADD subtract -> R[m] via BusA.
  maps.opc2[9] = {{"ZADD", kSub, ModuleAction::Write{RegSel::r_file('m'), "BusA"}}};
  // 10/11/12/13: MULT result -> P / X / Y / Z via BusA (fixed unit, no op).
  maps.opc2[10] = {{"MULT", std::nullopt,
                    ModuleAction::Write{RegSel::fixed("P"), "BusA"}}};
  maps.opc2[11] = {{"MULT", std::nullopt,
                    ModuleAction::Write{RegSel::fixed("X"), "BusA"}}};
  maps.opc2[12] = {{"MULT", std::nullopt,
                    ModuleAction::Write{RegSel::fixed("Y"), "BusA"}}};
  maps.opc2[13] = {{"MULT", std::nullopt,
                    ModuleAction::Write{RegSel::fixed("Z"), "BusA"}}};
  // 14: ZADD subtract -> R[m] via BusB (used when BusA carries another
  //     write in the same step).
  maps.opc2[14] = {{"ZADD", kSub, ModuleAction::Write{RegSel::r_file('m'), "BusB"}}};
  // 15: XADD arithmetic right shift by the gain constant -> R[m] via BusB —
  //     the paper's `Rshift(x2, i)` micro-operation.
  maps.opc2[15] = {{"XADD", kRshiftBase + kGainShift,
                    ModuleAction::Write{RegSel::r_file('m'), "BusB"}}};
  // 16: YADD add -> R[m] via BusA.
  maps.opc2[16] = {{"YADD", kAdd, ModuleAction::Write{RegSel::r_file('m'), "BusA"}}};
  // 17: CPF result -> F via BusB (flag set completion).
  maps.opc2[17] = {{"CPF", std::nullopt,
                    ModuleAction::Write{RegSel::fixed("F"), "BusB"}}};
  return maps;
}

unsigned field_value(char field, const MicroInstruction& instr) {
  switch (field) {
    case 'j':
      return instr.j;
    case 'r':
      return instr.r;
    case 'm':
      return instr.m;
    default:
      throw std::logic_error("resolve_reg: bad field selector");
  }
}

std::string resolve_reg(const RegSel& sel, const MicroInstruction& instr) {
  switch (sel.kind) {
    case RegSel::Kind::kFixed:
      return sel.name;
    case RegSel::Kind::kJFile:
      return j_reg(field_value(sel.field, instr));
    case RegSel::Kind::kRFile:
      return r_reg(field_value(sel.field, instr));
    case RegSel::Kind::kConstant:
      return sel.name;
  }
  throw std::logic_error("resolve_reg: corrupt selector");
}

transfer::Endpoint source_endpoint(const RegSel& sel,
                                   const MicroInstruction& instr) {
  if (sel.kind == RegSel::Kind::kConstant) {
    return transfer::Endpoint::constant(sel.name);
  }
  return transfer::Endpoint::register_out(resolve_reg(sel, instr));
}

}  // namespace

const CodeMaps& iks_code_maps() {
  static const CodeMaps maps = build_code_maps();
  return maps;
}

std::vector<transfer::RegisterTransfer> translate_microcode(
    std::span<const MicroInstruction> program, const CodeMaps& maps,
    const transfer::Design& resources) {
  std::vector<transfer::RegisterTransfer> transfers;
  for (const MicroInstruction& instr : program) {
    const unsigned step = instr.addr;
    if (step == 0) {
      throw std::invalid_argument("microinstruction at address 0 (steps are 1-based)");
    }
    const auto routes_it = maps.opc1.find(instr.opc1);
    if (routes_it == maps.opc1.end()) {
      throw std::invalid_argument("unknown opc1 code " + std::to_string(instr.opc1));
    }
    const auto actions_it = maps.opc2.find(instr.opc2);
    if (actions_it == maps.opc2.end()) {
      throw std::invalid_argument("unknown opc2 code " + std::to_string(instr.opc2));
    }

    // Operand paths per module, from the routing code.
    std::map<std::string, transfer::RegisterTransfer> per_module;
    for (const Route& route : routes_it->second) {
      transfer::RegisterTransfer& tuple = per_module[route.module];
      tuple.module = route.module;
      tuple.read_step = step;
      transfer::OperandPath path{source_endpoint(route.src, instr), route.bus};
      if (route.port == 0) {
        tuple.operand_a = std::move(path);
      } else {
        tuple.operand_b = std::move(path);
      }
    }
    // Operations and write-backs, from the operation code.
    for (const ModuleAction& action : actions_it->second) {
      transfer::RegisterTransfer& tuple = per_module[action.module];
      tuple.module = action.module;
      if (action.op.has_value()) {
        tuple.op = action.op;
        if (!tuple.read_step.has_value()) {
          tuple.read_step = step;  // op-only action (e.g. MACC clear)
        }
      }
      if (action.write.has_value()) {
        const transfer::ModuleDecl* module = resources.find_module(action.module);
        if (module == nullptr) {
          throw std::invalid_argument("action on undeclared module '" +
                                      action.module + "'");
        }
        tuple.write_step = step + module->latency;
        tuple.write_bus = action.write->bus;
        tuple.destination = resolve_reg(action.write->dst, instr);
      }
    }
    for (auto& [module, tuple] : per_module) {
      transfers.push_back(std::move(tuple));
    }
  }
  return transfers;
}

}  // namespace ctrtl::iks
