#include "iks/resources.h"

namespace ctrtl::iks {

std::string j_reg(unsigned index) {
  return "J" + std::to_string(index);
}
std::string r_reg(unsigned index) {
  return "R" + std::to_string(index);
}
std::string m_reg(unsigned index) {
  return "M" + std::to_string(index);
}

transfer::Design iks_resources(unsigned cs_max) {
  using transfer::ModuleKind;
  transfer::Design design;
  design.name = "iks";
  design.cs_max = cs_max;

  for (unsigned i = 0; i < 7; ++i) {
    design.registers.push_back({j_reg(i), std::nullopt});
  }
  for (unsigned i = 0; i < 8; ++i) {
    design.registers.push_back({r_reg(i), std::nullopt});
  }
  for (unsigned i = 0; i < 4; ++i) {
    design.registers.push_back({m_reg(i), std::nullopt});
  }
  for (const char* name : {"P", "X", "Y", "Z", "zang", "x2", "y2", "F"}) {
    design.registers.push_back({name, std::nullopt});
  }

  design.buses = {{"BusA"}, {"BusB"}, {"LA"}, {"LB"}};

  // One fixed-point unit scaled to 1.0 for flag setting and literal zero.
  design.constants = {{"one", std::int64_t{1} << kFracBits}, {"zero", 0}};

  design.modules = {
      {"MULT", ModuleKind::kMul, 2, kFracBits},
      {"ZADD", ModuleKind::kAlu, 0},
      {"XADD", ModuleKind::kAlu, 0},
      {"YADD", ModuleKind::kAlu, 0},
      {"MACC", ModuleKind::kMacc, 1, kFracBits},
      {"CORDIC", ModuleKind::kCordic, 1, kFracBits, kCordicIterations},
      {"CPZ", ModuleKind::kCopy, 0},
      {"CPY", ModuleKind::kCopy, 0},
      {"CPX", ModuleKind::kCopy, 0},
      {"CPF", ModuleKind::kCopy, 0},
  };
  return design;
}

}  // namespace ctrtl::iks
