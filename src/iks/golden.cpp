#include "iks/golden.h"

#include <cmath>

#include "iks/resources.h"
#include "rtl/modules.h"

namespace ctrtl::iks {

namespace {

std::int64_t fmul(std::int64_t a, std::int64_t b) {
  return rtl::fixed_mul(a, b, kFracBits);
}

rtl::CordicModule::SinCos sincos(std::int64_t angle) {
  return rtl::CordicModule::rotate(angle, kFracBits, kCordicIterations);
}

}  // namespace

GoldenTrace golden_iteration(const IksInputs& inputs) {
  GoldenTrace t;
  const auto sc1 = sincos(inputs.theta1);
  t.c1 = sc1.cos;
  t.s1 = sc1.sin;
  const auto sc12 = sincos(inputs.theta1 + inputs.theta2);
  t.c12 = sc12.cos;
  t.s12 = sc12.sin;

  // MACC accumulations (same op order as microinstructions 8..13).
  t.x = fmul(inputs.l1, t.c1) + fmul(inputs.l2, t.c12);
  t.y = fmul(inputs.l1, t.s1) + fmul(inputs.l2, t.s12);

  t.ex = inputs.px - t.x;
  t.ey = inputs.py - t.y;

  // dt1 = (x*ey - y*ex) >> k
  t.dt1 = (fmul(t.x, t.ey) - fmul(t.y, t.ex)) >> kGainShift;
  // dt2 = (l2*c12*ey - l2*s12*ex) >> k, with the products formed exactly as
  // the microprogram does (Z = l2*c12, Y = l2*s12 first).
  const std::int64_t z = fmul(inputs.l2, t.c12);
  const std::int64_t yy = fmul(inputs.l2, t.s12);
  t.dt2 = (fmul(z, t.ey) - fmul(yy, t.ex)) >> kGainShift;

  t.theta1_next = inputs.theta1 + t.dt1;
  t.theta2_next = inputs.theta2 + t.dt2;
  return t;
}

std::vector<GoldenTrace> golden_iterate(IksInputs inputs, unsigned iterations) {
  std::vector<GoldenTrace> traces;
  traces.reserve(iterations);
  for (unsigned i = 0; i < iterations; ++i) {
    const GoldenTrace trace = golden_iteration(inputs);
    traces.push_back(trace);
    inputs.theta1 = trace.theta1_next;
    inputs.theta2 = trace.theta2_next;
  }
  return traces;
}

double position_error(const IksInputs& inputs, std::int64_t theta1,
                      std::int64_t theta2) {
  const auto sc1 = sincos(theta1);
  const auto sc12 = sincos(theta1 + theta2);
  const std::int64_t x = fmul(inputs.l1, sc1.cos) + fmul(inputs.l2, sc12.cos);
  const std::int64_t y = fmul(inputs.l1, sc1.sin) + fmul(inputs.l2, sc12.sin);
  const double one = static_cast<double>(std::int64_t{1} << kFracBits);
  const double dx = static_cast<double>(inputs.px - x) / one;
  const double dy = static_cast<double>(inputs.py - y) / one;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace ctrtl::iks
