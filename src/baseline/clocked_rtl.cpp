#include "baseline/clocked_rtl.h"

#include <set>
#include <stdexcept>

#include "transfer/module_sim.h"

namespace ctrtl::baseline {

using rtl::RtValue;
using RtSig = kernel::Signal<RtValue>;

struct ClockedRtlSim::Impl {
  clocked::TranslationPlan plan;  // owned copy (points into the caller's Design)

  kernel::Signal<bool>* clk = nullptr;
  kernel::DriverId clk_driver = 0;
  kernel::Signal<unsigned>* step = nullptr;
  kernel::DriverId step_driver = 0;

  struct Reg {
    std::string name;
    RtSig* q = nullptr;
    kernel::DriverId q_driver = 0;
    const std::vector<clocked::WriteSelect>* writes = nullptr;
  };
  std::vector<std::unique_ptr<Reg>> regs;
  std::map<std::string, Reg*> regs_by_name;

  struct Unit {
    std::string name;
    transfer::ModuleSim sim;
    const std::map<unsigned, clocked::ModuleActivation>* schedule = nullptr;
    RtSig* out = nullptr;  // flop output (latency >= 1) or comb output (0)
    kernel::DriverId out_driver = 0;
    std::vector<RtValue> stages;  // internal pipeline stages (latency - 1)
    explicit Unit(const transfer::ModuleDecl& decl) : sim(decl) {}
  };
  std::vector<std::unique_ptr<Unit>> units;
  std::map<std::string, Unit*> units_by_name;

  std::map<std::string, RtValue> constants;
  std::map<std::string, std::pair<RtSig*, kernel::DriverId>> inputs;

  [[nodiscard]] RtValue source_value(const transfer::Endpoint& source) const {
    using transfer::Endpoint;
    switch (source.kind) {
      case Endpoint::Kind::kRegisterOut:
        return regs_by_name.at(source.resource)->q->read();
      case Endpoint::Kind::kConstant:
        return constants.at(source.resource);
      case Endpoint::Kind::kInput:
        return inputs.at(source.resource).first->read();
      default:
        throw std::logic_error("clocked RTL baseline: unsupported source");
    }
  }

  /// Collects the signals a unit's operand muxes can read (its
  /// combinational sensitivity set, plus the step counter).
  [[nodiscard]] std::vector<kernel::SignalBase*> comb_sensitivity(
      const Unit& unit) const {
    std::vector<kernel::SignalBase*> sens = {step};
    std::set<kernel::SignalBase*> seen;
    if (unit.schedule != nullptr) {
      for (const auto& [s, activation] : *unit.schedule) {
        for (const clocked::OperandSelect& operand : activation.operands) {
          using transfer::Endpoint;
          kernel::SignalBase* signal = nullptr;
          if (operand.source.kind == Endpoint::Kind::kRegisterOut) {
            signal = regs_by_name.at(operand.source.resource)->q;
          } else if (operand.source.kind == Endpoint::Kind::kInput) {
            signal = inputs.at(operand.source.resource).first;
          }
          if (signal != nullptr && seen.insert(signal).second) {
            sens.push_back(signal);
          }
        }
      }
    }
    return sens;
  }

  void gather_operands(const Unit& unit, unsigned step_value,
                       std::vector<RtValue>& operands, RtValue& op) const {
    operands.assign(unit.sim.decl().num_inputs(), RtValue::disc());
    op = RtValue::disc();
    if (unit.schedule == nullptr) {
      return;
    }
    const auto it = unit.schedule->find(step_value);
    if (it == unit.schedule->end()) {
      return;
    }
    for (const clocked::OperandSelect& operand : it->second.operands) {
      operands[operand.port] = source_value(operand.source);
    }
    if (it->second.op.has_value()) {
      op = RtValue::of(*it->second.op);
    }
  }
};

namespace {

using Impl = ClockedRtlSim::Impl;

kernel::Process clock_process(kernel::Signal<bool>& clk, kernel::DriverId driver,
                              unsigned cycles, std::uint64_t period_fs) {
  for (unsigned i = 0; i < cycles; ++i) {
    clk.drive(driver, true);
    co_await kernel::wait_for_fs(period_fs / 2);
    clk.drive(driver, false);
    co_await kernel::wait_for_fs(period_fs - period_fs / 2);
  }
}

kernel::Process step_counter(Impl& impl) {
  auto& clk = *impl.clk;
  const std::vector<kernel::SignalBase*> sens = {&clk};
  for (;;) {
    co_await kernel::wait_until(sens, [&clk] { return clk.read(); });
    impl.step->drive(impl.step_driver, impl.step->read() + 1);
  }
}

/// Synchronous process of a pipelined unit: one evaluation and one pipeline
/// shift per rising edge; the `out` signal models the final stage flop.
kernel::Process unit_sync(Impl& impl, Impl::Unit& unit) {
  auto& clk = *impl.clk;
  const std::vector<kernel::SignalBase*> sens = {&clk};
  std::vector<RtValue> operands;
  bool poisoned = false;
  for (;;) {
    co_await kernel::wait_until(sens, [&clk] { return clk.read(); });
    RtValue op = RtValue::disc();
    impl.gather_operands(unit, impl.step->read(), operands, op);
    const RtValue value =
        poisoned ? RtValue::illegal() : unit.sim.evaluate(operands, op);
    if (value.is_illegal()) {
      poisoned = true;
    }
    // Shift through the internal stages; the last stage drives `out`.
    RtValue emit = value;
    if (!unit.stages.empty()) {
      emit = unit.stages.back();
      for (std::size_t i = unit.stages.size(); i-- > 1;) {
        unit.stages[i] = unit.stages[i - 1];
      }
      unit.stages[0] = value;
    }
    unit.out->drive(unit.out_driver, emit);
  }
}

/// Combinational process of a zero-latency unit: re-evaluates whenever the
/// step counter or any operand source changes.
kernel::Process unit_comb(Impl& impl, Impl::Unit& unit) {
  const std::vector<kernel::SignalBase*> sens = impl.comb_sensitivity(unit);
  std::vector<RtValue> operands;
  for (;;) {
    RtValue op = RtValue::disc();
    impl.gather_operands(unit, impl.step->read(), operands, op);
    unit.out->drive(unit.out_driver, unit.sim.evaluate(operands, op));
    co_await kernel::wait_on(sens);
  }
}

/// Synchronous register: latches the selected unit output at the rising
/// edge when a write is scheduled for the current step and the value is not
/// DISC.
kernel::Process register_sync(Impl& impl, Impl::Reg& reg,
                              std::vector<verify::RegisterWrite>& writes) {
  auto& clk = *impl.clk;
  const std::vector<kernel::SignalBase*> sens = {&clk};
  for (;;) {
    co_await kernel::wait_until(sens, [&clk] { return clk.read(); });
    if (reg.writes == nullptr) {
      continue;
    }
    const unsigned step = impl.step->read();
    for (const clocked::WriteSelect& write : *reg.writes) {
      if (write.step != step) {
        continue;
      }
      const RtValue value = impl.units_by_name.at(write.module)->out->read();
      if (value.is_disc()) {
        continue;
      }
      if (value != reg.q->read()) {
        writes.push_back(verify::RegisterWrite{step, reg.name, value});
      }
      reg.q->drive(reg.q_driver, value);
    }
  }
}

}  // namespace

ClockedRtlSim::ClockedRtlSim(const clocked::TranslationPlan& plan,
                             std::uint64_t period_fs)
    : scheduler_(std::make_unique<kernel::Scheduler>()),
      impl_(std::make_unique<Impl>()),
      clock_cycles_(plan.clock_cycles),
      period_fs_(period_fs) {
  // Zero-latency units read their operands combinationally during the write
  // cycle; pipelined units need one extra cycle for the value to traverse
  // the final stage flop — covered by clock_cycles = cs_max + 1 either way.
  impl_->plan = plan;
  const transfer::Design& design = impl_->plan.design;
  auto& sched = *scheduler_;

  impl_->clk = &sched.make_signal<bool>("clk", false);
  impl_->clk_driver = impl_->clk->add_driver(false);
  impl_->step = &sched.make_signal<unsigned>("step", 0u);
  impl_->step_driver = impl_->step->add_driver(0u);

  for (const transfer::ConstantDecl& constant : design.constants) {
    impl_->constants.emplace(constant.name, RtValue::of(constant.value));
  }
  for (const transfer::InputDecl& input : design.inputs) {
    RtSig& sig = sched.make_signal<RtValue>("in." + input.name, RtValue::disc());
    impl_->inputs.emplace(input.name,
                          std::pair{&sig, sig.add_driver(RtValue::disc())});
  }
  for (const transfer::RegisterDecl& decl : design.registers) {
    auto reg = std::make_unique<Impl::Reg>();
    reg->name = decl.name;
    reg->q = &sched.make_signal<RtValue>(
        decl.name + ".q", decl.initial.has_value() ? RtValue::of(*decl.initial)
                                                   : RtValue::disc());
    reg->q_driver = reg->q->add_driver(reg->q->read());
    const auto it = impl_->plan.register_schedule.find(decl.name);
    reg->writes =
        it == impl_->plan.register_schedule.end() ? nullptr : &it->second;
    impl_->regs_by_name[decl.name] = reg.get();
    impl_->regs.push_back(std::move(reg));
  }
  for (const transfer::ModuleDecl& decl : design.modules) {
    auto unit = std::make_unique<Impl::Unit>(decl);
    unit->name = decl.name;
    unit->out = &sched.make_signal<RtValue>(decl.name + ".out", RtValue::disc());
    unit->out_driver = unit->out->add_driver(RtValue::disc());
    if (decl.latency >= 1) {
      unit->stages.assign(decl.latency - 1, RtValue::disc());
    }
    const auto it = impl_->plan.module_schedule.find(decl.name);
    unit->schedule =
        it == impl_->plan.module_schedule.end() ? nullptr : &it->second;
    impl_->units_by_name[decl.name] = unit.get();
    impl_->units.push_back(std::move(unit));
  }

  // Processes: conventional RTL style, one per component.
  sched.spawn("step_counter", step_counter(*impl_));
  for (auto& unit : impl_->units) {
    if (unit->sim.decl().latency == 0) {
      sched.spawn("comb." + unit->name, unit_comb(*impl_, *unit));
    } else {
      sched.spawn("sync." + unit->name, unit_sync(*impl_, *unit));
    }
  }
  for (auto& reg : impl_->regs) {
    sched.spawn("reg." + reg->name, register_sync(*impl_, *reg, writes_));
  }
  sched.spawn("clock", clock_process(*impl_->clk, impl_->clk_driver,
                                     clock_cycles_, period_fs_));
}

ClockedRtlSim::~ClockedRtlSim() {
  scheduler_->shutdown();
}

ClockedRtlSim::Result ClockedRtlSim::run() {
  const kernel::KernelStats before = scheduler_->stats();
  Result result;
  result.kernel_cycles = scheduler_->run();
  result.stats = scheduler_->stats() - before;
  result.clock_cycles = clock_cycles_;
  return result;
}

rtl::RtValue ClockedRtlSim::register_value(const std::string& name) const {
  const auto it = impl_->regs_by_name.find(name);
  if (it == impl_->regs_by_name.end()) {
    throw std::invalid_argument("ClockedRtlSim: no register '" + name + "'");
  }
  return it->second->q->read();
}

void ClockedRtlSim::set_input(const std::string& name, rtl::RtValue value) {
  const auto it = impl_->inputs.find(name);
  if (it == impl_->inputs.end()) {
    throw std::invalid_argument("ClockedRtlSim: no input '" + name + "'");
  }
  it->second.first->drive(it->second.second, value);
}

}  // namespace ctrtl::baseline
