#include "baseline/handshake.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "kernel/task.h"
#include "transfer/module_sim.h"

namespace ctrtl::baseline {

using rtl::RtValue;
using RtSig = kernel::Signal<RtValue>;
using IdSig = kernel::Signal<std::int64_t>;

namespace {

/// Request lines are idle-0, driven by at most one client at a time; the
/// sum resolver keeps the active id visible without arbitration logic.
std::int64_t sum_resolver(std::span<const std::int64_t> values) {
  return std::accumulate(values.begin(), values.end(), std::int64_t{0});
}

RtValue rt_resolver(std::span<const RtValue> values) {
  return rtl::resolve_rt(values);
}

}  // namespace

struct HandshakeModel::Impl {
  transfer::Design design;  // owned copy: clients point into its transfers

  struct RegisterServer {
    RtValue value = RtValue::disc();
    IdSig* r_req = nullptr;
    RtSig* r_data = nullptr;
    kernel::DriverId r_data_driver = 0;
    IdSig* r_ack = nullptr;
    kernel::DriverId r_ack_driver = 0;
    IdSig* w_req = nullptr;
    RtSig* w_data = nullptr;
    IdSig* w_ack = nullptr;
    kernel::DriverId w_ack_driver = 0;
  };
  std::map<std::string, RegisterServer> registers;

  struct ModuleServer {
    transfer::ModuleSim sim;
    IdSig* req = nullptr;
    RtSig* a = nullptr;
    RtSig* b = nullptr;
    RtSig* op = nullptr;
    RtSig* res = nullptr;
    kernel::DriverId res_driver = 0;
    IdSig* ack = nullptr;
    kernel::DriverId ack_driver = 0;
    explicit ModuleServer(const transfer::ModuleDecl& decl) : sim(decl) {}
  };
  std::map<std::string, ModuleServer> modules;

  std::map<std::string, RtValue> constants;
  std::map<std::string, std::pair<RtSig*, kernel::DriverId>> inputs;

  IdSig* start = nullptr;
  kernel::DriverId start_driver = 0;
  IdSig* done = nullptr;

  struct Client {
    const transfer::RegisterTransfer* tuple = nullptr;
    std::int64_t id = 0;
    // Drivers owned by this client on the shared channels.
    std::map<IdSig*, kernel::DriverId> id_drivers;
    std::map<RtSig*, kernel::DriverId> data_drivers;
    kernel::DriverId done_driver = 0;
  };
  std::vector<std::unique_ptr<Client>> clients;
};

namespace {

using Impl = HandshakeModel::Impl;

kernel::Process register_server(Impl::RegisterServer& reg) {
  auto& r_req = *reg.r_req;
  auto& w_req = *reg.w_req;
  const std::vector<kernel::SignalBase*> sens = {&r_req, &w_req};
  for (;;) {
    co_await kernel::wait_until(
        sens, [&] { return r_req.read() != 0 || w_req.read() != 0; });
    if (r_req.read() != 0) {
      const std::int64_t id = r_req.read();
      reg.r_data->drive(reg.r_data_driver, reg.value);
      reg.r_ack->drive(reg.r_ack_driver, id);
      const std::vector<kernel::SignalBase*> rsens = {&r_req};
      co_await kernel::wait_until(rsens, [&] { return r_req.read() == 0; });
      reg.r_ack->drive(reg.r_ack_driver, 0);
    } else {
      const std::int64_t id = w_req.read();
      reg.value = reg.w_data->read();
      reg.w_ack->drive(reg.w_ack_driver, id);
      const std::vector<kernel::SignalBase*> wsens = {&w_req};
      co_await kernel::wait_until(wsens, [&] { return w_req.read() == 0; });
      reg.w_ack->drive(reg.w_ack_driver, 0);
    }
  }
}

kernel::Process module_server(Impl::ModuleServer& module) {
  auto& req = *module.req;
  const std::vector<kernel::SignalBase*> sens = {&req};
  for (;;) {
    co_await kernel::wait_until(sens, [&] { return req.read() != 0; });
    const std::int64_t id = req.read();
    std::vector<RtValue> operands = {module.a->read()};
    if (module.b != nullptr) {
      operands.push_back(module.b->read());
    }
    const RtValue op =
        module.op != nullptr ? module.op->read() : RtValue::disc();
    module.res->drive(module.res_driver, module.sim.evaluate(operands, op));
    module.ack->drive(module.ack_driver, id);
    co_await kernel::wait_until(sens, [&] { return req.read() == 0; });
    module.ack->drive(module.ack_driver, 0);
  }
}

/// One four-phase exchange as seen from the client: raise the request,
/// wait for the matching ack, release, wait for the ack release.
kernel::Task four_phase(Impl::Client& client, IdSig& req, IdSig& ack) {
  const std::vector<kernel::SignalBase*> sens = {&ack};
  req.drive(client.id_drivers.at(&req), client.id);
  const std::int64_t id = client.id;
  co_await kernel::wait_until(sens, [&ack, id] { return ack.read() == id; });
  req.drive(client.id_drivers.at(&req), 0);
  co_await kernel::wait_until(sens, [&ack] { return ack.read() == 0; });
}

kernel::Task read_source(Impl& impl, Impl::Client& client,
                         const transfer::Endpoint& source, RtValue& out) {
  using transfer::Endpoint;
  switch (source.kind) {
    case Endpoint::Kind::kRegisterOut: {
      Impl::RegisterServer& reg = impl.registers.at(source.resource);
      // The data line is valid while the ack is held; sample between the
      // two halves of the handshake.
      auto& req = *reg.r_req;
      auto& ack = *reg.r_ack;
      const std::vector<kernel::SignalBase*> sens = {&ack};
      req.drive(client.id_drivers.at(&req), client.id);
      const std::int64_t id = client.id;
      co_await kernel::wait_until(sens, [&ack, id] { return ack.read() == id; });
      out = reg.r_data->read();
      req.drive(client.id_drivers.at(&req), 0);
      co_await kernel::wait_until(sens, [&ack] { return ack.read() == 0; });
      break;
    }
    case Endpoint::Kind::kConstant:
      out = impl.constants.at(source.resource);
      break;
    case Endpoint::Kind::kInput:
      out = impl.inputs.at(source.resource).first->read();
      break;
    default:
      throw std::logic_error("handshake model: unsupported operand source");
  }
}

kernel::Process client_process(Impl& impl, Impl::Client& client) {
  const transfer::RegisterTransfer& tuple = *client.tuple;
  auto& start = *impl.start;
  const std::vector<kernel::SignalBase*> start_sens = {&start};
  const std::int64_t id = client.id;
  co_await kernel::wait_until(start_sens,
                              [&start, id] { return start.read() == id; });

  RtValue a = RtValue::disc();
  RtValue b = RtValue::disc();
  if (tuple.operand_a) {
    co_await read_source(impl, client, tuple.operand_a->source, a);
  }
  if (tuple.operand_b) {
    co_await read_source(impl, client, tuple.operand_b->source, b);
  }

  Impl::ModuleServer& module = impl.modules.at(tuple.module);
  module.a->drive(client.data_drivers.at(module.a), a);
  if (module.b != nullptr) {
    module.b->drive(client.data_drivers.at(module.b), b);
  }
  if (module.op != nullptr && tuple.op.has_value()) {
    module.op->drive(client.data_drivers.at(module.op), RtValue::of(*tuple.op));
  }
  co_await four_phase(client, *module.req, *module.ack);
  const RtValue result = module.res->read();
  module.a->drive(client.data_drivers.at(module.a), RtValue::disc());
  if (module.b != nullptr) {
    module.b->drive(client.data_drivers.at(module.b), RtValue::disc());
  }
  if (module.op != nullptr && tuple.op.has_value()) {
    module.op->drive(client.data_drivers.at(module.op), RtValue::disc());
  }

  if (tuple.destination.has_value() && !result.is_disc()) {
    Impl::RegisterServer& dest = impl.registers.at(*tuple.destination);
    dest.w_data->drive(client.data_drivers.at(dest.w_data), result);
    co_await four_phase(client, *dest.w_req, *dest.w_ack);
    dest.w_data->drive(client.data_drivers.at(dest.w_data), RtValue::disc());
  }

  impl.done->drive(client.done_driver, id);
  co_await kernel::wait_until(start_sens, [&start] { return start.read() == 0; });
  impl.done->drive(client.done_driver, 0);
}

kernel::Process sequencer(Impl& impl) {
  auto& done = *impl.done;
  const std::vector<kernel::SignalBase*> sens = {&done};
  for (std::size_t i = 0; i < impl.clients.size(); ++i) {
    const std::int64_t id = impl.clients[i]->id;
    impl.start->drive(impl.start_driver, id);
    co_await kernel::wait_until(sens, [&done, id] { return done.read() == id; });
    impl.start->drive(impl.start_driver, 0);
    co_await kernel::wait_until(sens, [&done] { return done.read() == 0; });
  }
}

}  // namespace

HandshakeModel::HandshakeModel(const transfer::Design& design)
    : scheduler_(std::make_unique<kernel::Scheduler>()),
      impl_(std::make_unique<Impl>()) {
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("HandshakeModel: design does not validate:\n" +
                                diags.to_text());
  }
  for (const transfer::RegisterTransfer& tuple : design.transfers) {
    const bool has_read = tuple.operand_a || tuple.operand_b || tuple.op;
    if (tuple.destination.has_value() && !has_read) {
      throw std::invalid_argument(
          "HandshakeModel: write-only partial tuples are not representable "
          "in the handshake abstraction");
    }
  }
  impl_->design = design;
  auto& sched = *scheduler_;

  for (const transfer::RegisterDecl& reg : design.registers) {
    Impl::RegisterServer server;
    server.value = reg.initial.has_value() ? RtValue::of(*reg.initial)
                                           : RtValue::disc();
    server.r_req = &sched.make_signal<std::int64_t>(reg.name + ".rreq", 0,
                                                    sum_resolver);
    server.r_data = &sched.make_signal<RtValue>(reg.name + ".rdata", RtValue::disc());
    server.r_data_driver = server.r_data->add_driver(RtValue::disc());
    server.r_ack = &sched.make_signal<std::int64_t>(reg.name + ".rack", 0);
    server.r_ack_driver = server.r_ack->add_driver(0);
    server.w_req = &sched.make_signal<std::int64_t>(reg.name + ".wreq", 0,
                                                    sum_resolver);
    server.w_data =
        &sched.make_signal<RtValue>(reg.name + ".wdata", RtValue::disc(), rt_resolver);
    server.w_ack = &sched.make_signal<std::int64_t>(reg.name + ".wack", 0);
    server.w_ack_driver = server.w_ack->add_driver(0);
    impl_->registers.emplace(reg.name, server);
  }
  // ModuleSim keeps a pointer to its declaration: it must point into the
  // owned copy, never into the caller's (possibly temporary) design.
  for (const transfer::ModuleDecl& module : impl_->design.modules) {
    auto [it, inserted] =
        impl_->modules.emplace(module.name, Impl::ModuleServer(module));
    Impl::ModuleServer& server = it->second;
    server.req = &sched.make_signal<std::int64_t>(module.name + ".req", 0,
                                                  sum_resolver);
    server.a = &sched.make_signal<RtValue>(module.name + ".a", RtValue::disc(),
                                           rt_resolver);
    if (module.num_inputs() > 1) {
      server.b = &sched.make_signal<RtValue>(module.name + ".b", RtValue::disc(),
                                             rt_resolver);
    }
    if (module.has_op_port()) {
      server.op = &sched.make_signal<RtValue>(module.name + ".opv",
                                              RtValue::disc(), rt_resolver);
    }
    server.res = &sched.make_signal<RtValue>(module.name + ".res", RtValue::disc());
    server.res_driver = server.res->add_driver(RtValue::disc());
    server.ack = &sched.make_signal<std::int64_t>(module.name + ".ack", 0);
    server.ack_driver = server.ack->add_driver(0);
  }
  for (const transfer::ConstantDecl& constant : design.constants) {
    impl_->constants.emplace(constant.name, RtValue::of(constant.value));
  }
  for (const transfer::InputDecl& input : design.inputs) {
    RtSig& sig = sched.make_signal<RtValue>("in." + input.name, RtValue::disc());
    impl_->inputs.emplace(input.name,
                          std::pair{&sig, sig.add_driver(RtValue::disc())});
  }

  impl_->start = &sched.make_signal<std::int64_t>("seq.start", 0);
  impl_->start_driver = impl_->start->add_driver(0);
  impl_->done = &sched.make_signal<std::int64_t>("seq.done", 0, sum_resolver);

  // Clients, in schedule order (read step, then declaration order). Tuple
  // pointers go into the owned copy, not the caller's design.
  std::vector<const transfer::RegisterTransfer*> ordered;
  for (const transfer::RegisterTransfer& tuple : impl_->design.transfers) {
    ordered.push_back(&tuple);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto* a, const auto* b) {
                     const unsigned sa = a->read_step.value_or(*a->write_step);
                     const unsigned sb = b->read_step.value_or(*b->write_step);
                     return sa < sb;
                   });
  std::int64_t next_id = 1;
  for (const transfer::RegisterTransfer* tuple : ordered) {
    auto client = std::make_unique<Impl::Client>();
    client->tuple = tuple;
    client->id = next_id++;
    client->done_driver = impl_->done->add_driver(0);
    // Allocate the channel drivers this client will use.
    const auto id_driver = [&](IdSig* signal) {
      if (!client->id_drivers.contains(signal)) {
        client->id_drivers[signal] = signal->add_driver(0);
      }
    };
    const auto data_driver = [&](RtSig* signal) {
      if (!client->data_drivers.contains(signal)) {
        client->data_drivers[signal] = signal->add_driver(RtValue::disc());
      }
    };
    for (const auto* operand : {&tuple->operand_a, &tuple->operand_b}) {
      if (operand->has_value() &&
          (*operand)->source.kind == transfer::Endpoint::Kind::kRegisterOut) {
        id_driver(impl_->registers.at((*operand)->source.resource).r_req);
      }
    }
    Impl::ModuleServer& module = impl_->modules.at(tuple->module);
    id_driver(module.req);
    data_driver(module.a);
    if (module.b != nullptr) {
      data_driver(module.b);
    }
    if (module.op != nullptr) {
      data_driver(module.op);
    }
    if (tuple->destination.has_value()) {
      Impl::RegisterServer& dest = impl_->registers.at(*tuple->destination);
      id_driver(dest.w_req);
      data_driver(dest.w_data);
    }
    impl_->clients.push_back(std::move(client));
  }

  // Spawn servers, clients, sequencer.
  for (auto& [name, server] : impl_->registers) {
    sched.spawn("regserver." + name, register_server(server));
  }
  for (auto& [name, server] : impl_->modules) {
    sched.spawn("modserver." + name, module_server(server));
  }
  for (auto& client : impl_->clients) {
    sched.spawn("client." + std::to_string(client->id),
                client_process(*impl_, *client));
  }
  sched.spawn("sequencer", sequencer(*impl_));
}

HandshakeModel::~HandshakeModel() {
  scheduler_->shutdown();
}

HandshakeModel::Result HandshakeModel::run() {
  const kernel::KernelStats before = scheduler_->stats();
  Result result;
  result.kernel_cycles = scheduler_->run();
  result.stats = scheduler_->stats() - before;
  return result;
}

rtl::RtValue HandshakeModel::register_value(const std::string& name) const {
  const auto it = impl_->registers.find(name);
  if (it == impl_->registers.end()) {
    throw std::invalid_argument("HandshakeModel: no register '" + name + "'");
  }
  return it->second.value;
}

void HandshakeModel::set_input(const std::string& name, rtl::RtValue value) {
  const auto it = impl_->inputs.find(name);
  if (it == impl_->inputs.end()) {
    throw std::invalid_argument("HandshakeModel: no input '" + name + "'");
  }
  it->second.first->drive(it->second.second, value);
}

}  // namespace ctrtl::baseline
