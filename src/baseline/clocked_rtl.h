#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clocked/translate.h"
#include "kernel/scheduler.h"
#include "rtl/value.h"
#include "verify/trace.h"

namespace ctrtl::baseline {

/// Conventional clocked RTL simulation of a translated design, in the style
/// today's synthesis-subset models simulate: one process per flip-flop
/// group (registers, pipeline stages, step counter) triggered by the clock,
/// plus combinational mux processes that re-evaluate whenever their inputs
/// change. This is the "usual RT model" the paper positions itself against
/// — functionally equivalent but with clock-edge and combinational event
/// traffic on every cycle.
///
/// Used as the second baseline of experiment E6 (events/wall-time per
/// transfer vs the clock-free model) and as an extra differential check:
/// final register values must match the abstract model for clean designs.
class ClockedRtlSim {
 public:
  explicit ClockedRtlSim(const clocked::TranslationPlan& plan,
                         std::uint64_t period_fs = 1'000'000);
  ~ClockedRtlSim();

  ClockedRtlSim(const ClockedRtlSim&) = delete;
  ClockedRtlSim& operator=(const ClockedRtlSim&) = delete;

  struct Result {
    kernel::KernelStats stats;
    std::uint64_t kernel_cycles = 0;
    unsigned clock_cycles = 0;
  };

  Result run();

  [[nodiscard]] rtl::RtValue register_value(const std::string& name) const;
  void set_input(const std::string& name, rtl::RtValue value);
  [[nodiscard]] const std::vector<verify::RegisterWrite>& writes() const {
    return writes_;
  }
  [[nodiscard]] kernel::Scheduler& scheduler() { return *scheduler_; }

  struct Impl;

 private:
  std::unique_ptr<kernel::Scheduler> scheduler_;
  std::unique_ptr<Impl> impl_;
  std::vector<verify::RegisterWrite> writes_;
  unsigned clock_cycles_ = 0;
  std::uint64_t period_fs_ = 0;
};

}  // namespace ctrtl::baseline
