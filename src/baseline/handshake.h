#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/value.h"
#include "transfer/design.h"

namespace ctrtl::baseline {

/// The comparison point the paper names explicitly: abstract timing
/// modelled "by means of VHDL without introducing physical time" using
/// **asynchronous handshake** for every value exchange (section 2.7:
/// "Execution is very fast, because we need not to deal with asynchronous
/// handshake, as it is often used for exchanging values between modules
/// when more abstract timing is modeled...").
///
/// Every register transfer becomes a client process that four-phase
/// handshakes with the source register servers, the module server, and the
/// destination register server; a sequencer process serializes the clients
/// in schedule order. Each four-phase exchange costs four delta cycles, so
/// a transfer costs ~20 deltas — versus the paper model's six deltas for a
/// whole control step.
///
/// Functional behaviour matches the clock-free model for serialized
/// schedules (each tuple's read/write window disjoint from the others');
/// module latencies collapse (results are produced within the handshake),
/// which is exactly the abstraction level such handshake models live at.
class HandshakeModel {
 public:
  explicit HandshakeModel(const transfer::Design& design);
  ~HandshakeModel();

  HandshakeModel(const HandshakeModel&) = delete;
  HandshakeModel& operator=(const HandshakeModel&) = delete;

  struct Result {
    kernel::KernelStats stats;
    std::uint64_t kernel_cycles = 0;
  };

  Result run();

  [[nodiscard]] rtl::RtValue register_value(const std::string& name) const;
  void set_input(const std::string& name, rtl::RtValue value);

  [[nodiscard]] kernel::Scheduler& scheduler() { return *scheduler_; }

  /// Kernel-side state shared with the server/client processes (public so
  /// the process functions in the implementation file can use it).
  struct Impl;

 private:
  std::unique_ptr<kernel::Scheduler> scheduler_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ctrtl::baseline
