#include "kernel/scheduler.h"

#include <chrono>
#include <stdexcept>

namespace ctrtl::kernel {

std::string to_string(const SimTime& time) {
  return std::to_string(time.fs) + " fs +" + std::to_string(time.delta) + "d";
}

Scheduler::~Scheduler() {
  shutdown();
}

void Scheduler::register_signal(std::unique_ptr<SignalBase> signal) {
  signal->id_ = signals_.size();
  signals_.push_back(std::move(signal));
}

ProcessState& Scheduler::spawn(std::string name, Process process) {
  auto state = std::make_unique<ProcessState>();
  state->handle = process.release();
  state->name = std::move(name);
  state->scheduler = this;
  state->id = processes_.size();
  state->handle.promise().state = state.get();
  ProcessState& ref = *state;
  processes_.push_back(std::move(state));
  return ref;
}

void Scheduler::note_activation(SignalBase* signal) {
  if (!signal->pending_active_) {
    signal->pending_active_ = true;
    signal->next_pending_ = nullptr;
    if (pending_tail_ != nullptr) {
      pending_tail_->next_pending_ = signal;
    } else {
      pending_head_ = signal;
    }
    pending_tail_ = signal;
  }
}

void Scheduler::schedule_timed(std::uint64_t fs_delay, std::function<void()> apply) {
  timed_.push(TimedEntry{now_.fs + fs_delay, timed_seq_++, std::move(apply), nullptr});
}

void Scheduler::schedule_timed_wakeup(std::uint64_t fs_delay, ProcessState* process) {
  timed_.push(TimedEntry{now_.fs + fs_delay, timed_seq_++, {}, process});
}

bool Scheduler::quiescent() const {
  return pending_head_ == nullptr && timed_.empty();
}

void Scheduler::resume(ProcessState* process) {
  process->detach_from_signals();
  process->predicate = {};
  ++stats_.resumptions;
  // Resume the innermost suspended coroutine (the process itself, or a
  // nested Task frame). The thread-local current-process pointer lets the
  // wait awaitables find this ProcessState from any nesting depth.
  const std::coroutine_handle<> target =
      process->resume_handle ? process->resume_handle
                             : std::coroutine_handle<>(process->handle);
  process->resume_handle = nullptr;
  ProcessState* const previous = detail::current_process();
  detail::set_current_process(process);
  target.resume();
  detail::set_current_process(previous);
  if (process->exception && !pending_exception_) {
    pending_exception_ = process->exception;
  }
  if (process->terminated && process->handle) {
    process->handle.destroy();
    process->handle = nullptr;
  }
}

void Scheduler::rethrow_pending() {
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Scheduler::initialize() {
  if (initialized_) {
    return;
  }
  initialized_ = true;
  // VHDL initialization, step 1: the initial value of every signal is the
  // resolution of its drivers' initial contributions (LRM 12.6.1). No
  // events are produced.
  for (const auto& signal : signals_) {
    signal->apply_update();
  }
  // Step 2: every process executes once, in elaboration order,
  // until its first wait statement.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    ProcessState* process = processes_[i].get();
    if (!process->started && process->handle) {
      process->started = true;
      resume(process);
    }
  }
  rethrow_pending();
}

bool Scheduler::step() {
  if (!initialized_) {
    initialize();
    return true;
  }

  runnable_scratch_.clear();
  triggered_scratch_.clear();

  if (pending_head_ != nullptr) {
    // Delta cycle: physical time does not advance. The watchdog counts
    // consecutive deltas at one physical time: now_.delta is exactly that
    // count, so trip when executing the next delta would exceed the bound.
    if (now_.delta >= max_delta_cycles_) {
      throw WatchdogError(max_delta_cycles_, now_.delta + 1);
    }
    ++now_.delta;
    ++stats_.delta_cycles;
  } else if (!timed_.empty()) {
    // Advance physical time to the next transaction/wakeup.
    now_.fs = timed_.top().fs;
    now_.delta = 0;
    ++stats_.timed_cycles;
    while (!timed_.empty() && timed_.top().fs == now_.fs) {
      TimedEntry entry = timed_.top();
      timed_.pop();
      if (entry.apply) {
        entry.apply();  // marks the signal active for this cycle's update
      }
      if (entry.wake != nullptr) {
        runnable_scratch_.push_back(entry.wake);
      }
    }
  } else {
    return false;  // quiescent
  }

  // --- Update phase --------------------------------------------------------
  // Detach the whole pending list up front: anything activated from here on
  // (observers, and later the execution phase) lands on a fresh list for the
  // *next* cycle.
  ++epoch_;
  SignalBase* updating = pending_head_;
  pending_head_ = nullptr;
  pending_tail_ = nullptr;
  while (updating != nullptr) {
    SignalBase* const signal = updating;
    updating = signal->next_pending_;
    signal->next_pending_ = nullptr;
    signal->pending_active_ = false;
    ++stats_.updates;
    if (!signal->apply_update()) {
      continue;
    }
    ++stats_.events;
    if (!observers_.empty()) {
      stats_.observer_calls += observers_.size();
      for (const auto& [id, observer] : observers_) {
        observer(*signal, now_);
      }
    }
    stats_.waiter_visits += signal->waiters_.size();
    for (ProcessState* waiter : signal->waiters_) {
      if (waiter->trigger_epoch != epoch_) {
        waiter->trigger_epoch = epoch_;
        triggered_scratch_.push_back(waiter);
      }
    }
  }

  // --- Wait-condition evaluation -------------------------------------------
  for (ProcessState* process : triggered_scratch_) {
    if (process->predicate && !process->predicate()) {
      ++stats_.condition_rejects;
      continue;
    }
    runnable_scratch_.push_back(process);
  }

  // --- Execution phase ------------------------------------------------------
  for (ProcessState* process : runnable_scratch_) {
    if (process->handle && !process->terminated) {
      resume(process);
    }
  }
  rethrow_pending();
  return true;
}

std::uint64_t Scheduler::run(std::uint64_t max_cycles) {
  const auto start = std::chrono::steady_clock::now();
  initialize();
  std::uint64_t cycles = 0;
  while (cycles < max_cycles && step()) {
    ++cycles;
  }
  stats_.wall_time_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return cycles;
}

std::size_t Scheduler::add_event_observer(EventObserver observer) {
  const std::size_t id = next_observer_id_++;
  observers_.emplace_back(id, std::move(observer));
  return id;
}

void Scheduler::remove_event_observer(std::size_t id) {
  std::erase_if(observers_, [id](const auto& entry) { return entry.first == id; });
}

void Scheduler::dispatch_event_observers(const SignalBase& signal, SimTime time) {
  stats_.observer_calls += observers_.size();
  for (const auto& [id, observer] : observers_) {
    observer(signal, time);
  }
}

void Scheduler::shutdown() {
  for (auto& process : processes_) {
    if (process->handle) {
      process->detach_from_signals();
      process->handle.destroy();
      process->handle = nullptr;
      process->terminated = true;
    }
  }
}

}  // namespace ctrtl::kernel
