#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ctrtl::kernel {

/// A point in VHDL simulation time: physical time in femtoseconds plus the
/// delta-cycle count within that physical instant.
///
/// The paper's whole point is that abstract register-transfer models advance
/// *only* in delta time (`fs` stays 0 for the entire run); the kernel still
/// carries physical time so that the clocked baseline/back end can reuse it.
struct SimTime {
  std::uint64_t fs = 0;
  std::uint64_t delta = 0;

  friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;
};

/// Renders "<fs> fs +<delta>d".
std::string to_string(const SimTime& time);

}  // namespace ctrtl::kernel
