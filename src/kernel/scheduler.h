#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernel/process.h"
#include "kernel/signal.h"
#include "kernel/stats.h"
#include "kernel/time.h"

namespace ctrtl::kernel {

/// Thrown by `Scheduler::step` when the consecutive-delta-cycle watchdog
/// trips: the model scheduled yet another delta cycle after `limit()` of
/// them ran back-to-back at unchanged physical time. `next_delta()` is the
/// delta ordinal that would have executed next — callers with a phase map
/// (rtl::Controller) can pin it to a (control step, phase).
class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(std::uint64_t limit, std::uint64_t next_delta)
      : std::runtime_error(
            "delta-cycle watchdog: limit of " + std::to_string(limit) +
            " delta cycles reached without quiescence"),
        limit_(limit),
        next_delta_(next_delta) {}

  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] std::uint64_t next_delta() const { return next_delta_; }

 private:
  std::uint64_t limit_;
  std::uint64_t next_delta_;
};

/// Discrete-event scheduler implementing the VHDL simulation cycle for the
/// feature set used by the paper's subset (plus physical time for the
/// clocked back end):
///
///   1. *Update phase*: apply scheduled driver transactions, resolve signal
///      values, record events.
///   2. *Process evaluation*: processes waiting on an evented signal are
///      triggered; `wait until` conditions are re-checked.
///   3. *Execution phase*: triggered processes resume and run until their
///      next `wait`, scheduling new transactions (with delta delay by
///      default).
///
/// A cycle at unchanged physical time is a **delta cycle**; the paper's
/// control-step phases advance exactly one per delta cycle.
class Scheduler {
 public:
  static constexpr std::uint64_t kNoLimit = std::numeric_limits<std::uint64_t>::max();

  Scheduler() = default;
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates a signal owned by the scheduler. Returned reference stays valid
  /// for the scheduler's lifetime.
  template <typename T>
  Signal<T>& make_signal(std::string name, T initial,
                         typename Signal<T>::Resolver resolver = {}) {
    auto signal = std::make_unique<Signal<T>>(*this, std::move(name),
                                              std::move(initial), std::move(resolver));
    Signal<T>& ref = *signal;
    register_signal(std::move(signal));
    return ref;
  }

  /// Registers a process coroutine. Ownership of the frame moves into the
  /// scheduler; it first executes during initialization (VHDL: every process
  /// runs once at time zero).
  ProcessState& spawn(std::string name, Process process);

  /// Runs the initialization phase if it has not happened yet, then
  /// simulation cycles until the model is quiescent or `max_cycles` cycles
  /// have run. Returns the number of cycles executed (excluding
  /// initialization). Rethrows the first process exception.
  std::uint64_t run(std::uint64_t max_cycles = kNoLimit);

  /// Executes the initialization phase (idempotent).
  void initialize();

  /// One simulation cycle; returns false when quiescent (nothing ran).
  bool step();

  /// Arms the delta-cycle watchdog: once `limit` consecutive delta cycles
  /// have run at one physical time and the model schedules yet another,
  /// `step` throws WatchdogError instead of executing it (non-convergence
  /// becomes a structured diagnostic, not a hang). Timed cycles reset the
  /// consecutive count (`now().delta` returns to zero). kNoLimit disarms.
  void set_max_delta_cycles(std::uint64_t limit) { max_delta_cycles_ = limit; }
  [[nodiscard]] std::uint64_t max_delta_cycles() const {
    return max_delta_cycles_;
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const KernelStats& stats() const { return stats_; }

  /// True when no transactions or timed wakeups are outstanding.
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] std::size_t signal_count() const { return signals_.size(); }
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }

  /// Observers invoked on every signal event (after the value changed).
  /// Multiple observers may be attached (conflict monitor + trace recorder).
  using EventObserver = std::function<void(const SignalBase&, SimTime)>;
  std::size_t add_event_observer(EventObserver observer);
  void remove_event_observer(std::size_t id);

  /// Destroys all process coroutine frames. Owners whose component objects
  /// are referenced from process frames must call this before destroying
  /// those components.
  void shutdown();

  // --- external-engine interface -------------------------------------------
  // A compiled engine (rtl::CompiledEngine) executes signal updates directly
  // instead of through the event loop. These hooks keep the scheduler's
  // statistics and event observers coherent with what an equivalent
  // event-driven run would have reported, so downstream consumers
  // (BatchRunner stats comparison, trace/VCD observers) see one interface.

  /// Mutable statistics for an external engine to account its delta cycles,
  /// updates, events, and transactions against.
  [[nodiscard]] KernelStats& external_stats() { return stats_; }

  /// True when at least one event observer is attached (lets compiled
  /// engines skip observer dispatch entirely on the hot path).
  [[nodiscard]] bool has_event_observers() const { return !observers_.empty(); }

  /// Invokes every attached observer for an externally produced event and
  /// counts the observer calls. The caller accounts the event itself.
  void dispatch_event_observers(const SignalBase& signal, SimTime time);

  // --- internal API for signals and awaitables -----------------------------
  void note_activation(SignalBase* signal);
  void note_transaction() { ++stats_.transactions; }
  void schedule_timed(std::uint64_t fs_delay, std::function<void()> apply);
  void schedule_timed_wakeup(std::uint64_t fs_delay, ProcessState* process);

 private:
  void register_signal(std::unique_ptr<SignalBase> signal);
  void resume(ProcessState* process);
  void rethrow_pending();

  struct TimedEntry {
    std::uint64_t fs = 0;
    std::uint64_t seq = 0;
    std::function<void()> apply;  // either a transaction thunk ...
    ProcessState* wake = nullptr;  // ... or a process wakeup
  };
  struct TimedLater {
    bool operator()(const TimedEntry& a, const TimedEntry& b) const {
      return a.fs != b.fs ? a.fs > b.fs : a.seq > b.seq;
    }
  };

  std::vector<std::unique_ptr<SignalBase>> signals_;
  std::vector<std::unique_ptr<ProcessState>> processes_;
  /// Intrusive singly-linked list of signals activated for the next update
  /// phase (chained through SignalBase::next_pending_): O(1) append on
  /// activation, O(1) detach of the whole list at cycle start, and no
  /// allocation in steady state.
  SignalBase* pending_head_ = nullptr;
  SignalBase* pending_tail_ = nullptr;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, TimedLater> timed_;
  std::uint64_t timed_seq_ = 0;

  /// Per-cycle work lists, reused across cycles so a steady-state delta
  /// cycle performs no allocations.
  std::vector<ProcessState*> triggered_scratch_;
  std::vector<ProcessState*> runnable_scratch_;

  SimTime now_;
  KernelStats stats_;
  std::uint64_t max_delta_cycles_ = kNoLimit;
  std::uint64_t epoch_ = 0;
  bool initialized_ = false;
  std::exception_ptr pending_exception_;
  std::vector<std::pair<std::size_t, EventObserver>> observers_;
  std::size_t next_observer_id_ = 0;
};

}  // namespace ctrtl::kernel
