#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace ctrtl::kernel {

class Scheduler;
class SignalBase;
struct ProcessPromise;

/// The coroutine return type of a simulation process.
///
/// A process is written as a C++20 coroutine returning `Process`; its `wait`
/// statements are `co_await`s on the awaitables below. The object itself is
/// a move-only owner of the coroutine frame until the process is handed to
/// `Scheduler::spawn`, which takes ownership.
class [[nodiscard]] Process {
 public:
  using promise_type = ProcessPromise;

  explicit Process(std::coroutine_handle<ProcessPromise> handle) : handle_(handle) {}
  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

 private:
  friend class Scheduler;

  std::coroutine_handle<ProcessPromise> release() {
    return std::exchange(handle_, nullptr);
  }
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<ProcessPromise> handle_;
};

/// Scheduler-side bookkeeping for one process.
struct ProcessState {
  std::coroutine_handle<ProcessPromise> handle;
  /// Innermost suspended coroutine to resume (differs from `handle` when the
  /// process suspended inside a nested `Task`, e.g. the VHDL interpreter).
  std::coroutine_handle<> resume_handle;
  std::string name;
  Scheduler* scheduler = nullptr;
  std::size_t id = 0;

  /// Non-empty while suspended on a `wait until` — re-checked on each event
  /// on the sensitivity set, per VHDL wait-statement semantics.
  std::function<bool()> predicate;
  /// Signals whose waiter lists currently hold this process.
  std::vector<SignalBase*> sensitivity;
  /// Deduplicates triggering when several sensitivity signals fire in the
  /// same simulation cycle.
  std::uint64_t trigger_epoch = 0;

  bool started = false;
  bool terminated = false;
  std::exception_ptr exception;

  /// Removes this process from all waiter lists (called before resuming).
  void detach_from_signals();
};

struct ProcessPromise {
  ProcessState* state = nullptr;

  Process get_return_object() {
    return Process(std::coroutine_handle<ProcessPromise>::from_promise(*this));
  }
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<ProcessPromise> handle) const noexcept {
      if (ProcessState* state = handle.promise().state) {
        state->terminated = true;
      }
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void return_void() {}
  void unhandled_exception() {
    if (state != nullptr) {
      state->exception = std::current_exception();
      state->terminated = true;
    } else {
      std::terminate();
    }
  }
};

/// `co_await wait_on(sensitivity)` — VHDL `wait on sig, ...;`
/// Suspends until an event occurs on any listed signal.
///
/// The span overload borrows the caller's signal array, which must stay
/// alive across the suspension (a process-local or component-owned
/// sensitivity list does). Re-waiting on a borrowed span performs no
/// allocation, so processes that suspend once per delta cycle keep the
/// hot path allocation-free; the vector overload remains for one-off
/// waits on ad-hoc signal sets.
class WaitOn {
 public:
  explicit WaitOn(std::span<SignalBase* const> signals) : signals_(signals) {}
  explicit WaitOn(std::vector<SignalBase*> signals)
      : owned_(std::move(signals)), signals_(owned_) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}

 private:
  std::vector<SignalBase*> owned_;  // backing store for the vector overload
  std::span<SignalBase* const> signals_;
};

/// `co_await wait_until(sensitivity, pred)` — VHDL `wait until <cond>;`
/// Suspends; on each event on the sensitivity set the predicate is
/// evaluated and the process resumes only when it holds. Like VHDL, the
/// process *always* suspends first even if the predicate is already true.
/// The span overload has the same lifetime/allocation contract as WaitOn.
class WaitUntil {
 public:
  WaitUntil(std::span<SignalBase* const> signals, std::function<bool()> predicate)
      : signals_(signals), predicate_(std::move(predicate)) {}
  WaitUntil(std::vector<SignalBase*> signals, std::function<bool()> predicate)
      : owned_(std::move(signals)), signals_(owned_), predicate_(std::move(predicate)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}

 private:
  std::vector<SignalBase*> owned_;  // backing store for the vector overload
  std::span<SignalBase* const> signals_;
  std::function<bool()> predicate_;
};

/// `co_await wait_for_fs(t)` — VHDL `wait for <t>;`
/// Resumes the process after `t` femtoseconds of physical time. Rejected by
/// the clock-free subset checker; used by the clocked back end and baseline.
class WaitFor {
 public:
  explicit WaitFor(std::uint64_t fs_delay) : fs_delay_(fs_delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}

 private:
  std::uint64_t fs_delay_;
};

[[nodiscard]] WaitOn wait_on(std::span<SignalBase* const> signals);
[[nodiscard]] WaitOn wait_on(std::vector<SignalBase*> signals);
[[nodiscard]] WaitUntil wait_until(std::span<SignalBase* const> signals,
                                   std::function<bool()> predicate);
[[nodiscard]] WaitUntil wait_until(std::vector<SignalBase*> signals,
                                   std::function<bool()> predicate);
[[nodiscard]] WaitFor wait_for_fs(std::uint64_t fs_delay);

namespace detail {
/// The process currently executing on this thread (set by the scheduler
/// around every resumption). Wait awaitables use it so they also work from
/// nested `Task` coroutines.
[[nodiscard]] ProcessState* current_process();
void set_current_process(ProcessState* process);
}  // namespace detail

}  // namespace ctrtl::kernel
