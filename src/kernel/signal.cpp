#include "kernel/signal.h"

#include <algorithm>

#include "kernel/process.h"
#include "kernel/scheduler.h"

namespace ctrtl::kernel {

SignalBase::SignalBase(Scheduler& scheduler, std::string name)
    : scheduler_(scheduler), name_(std::move(name)) {}

SignalBase::~SignalBase() = default;

void SignalBase::notify_activation() {
  scheduler_.note_activation(this);
}

void SignalBase::notify_transaction() {
  scheduler_.note_transaction();
}

void SignalBase::schedule_timed_thunk(std::uint64_t fs_delay,
                                      std::function<void()> apply) {
  scheduler_.schedule_timed(fs_delay, std::move(apply));
}

void SignalBase::add_waiter(ProcessState* process) {
  waiters_.push_back(process);
}

void SignalBase::remove_waiter(ProcessState* process) {
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), process),
                 waiters_.end());
}

}  // namespace ctrtl::kernel
