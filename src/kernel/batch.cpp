#include "kernel/batch.h"

#include <algorithm>
#include <chrono>

namespace ctrtl::kernel {

namespace {

std::size_t resolve_worker_count(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

BatchEngine::BatchEngine(BatchOptions options) {
  const std::size_t workers = resolve_worker_count(options.workers);
  helpers_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i) {
    helpers_.emplace_back([this] { helper_loop(); });
  }
}

BatchEngine::~BatchEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& helper : helpers_) {
    helper.join();
  }
}

void BatchEngine::drain() {
  for (;;) {
    std::size_t index;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (next_job_ >= job_count_) {
        return;
      }
      index = next_job_++;
    }
    try {
      (*job_)(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      errors_.emplace_back(index, std::current_exception());
    }
  }
}

void BatchEngine::helper_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) {
        return;
      }
      seen_generation = generation_;
    }
    drain();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --helpers_running_;
    }
    done_cv_.notify_one();
  }
}

void BatchEngine::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  const auto start = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_job_ = 0;
    errors_.clear();
    helpers_running_ = helpers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  drain();  // the calling thread is a worker too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return helpers_running_ == 0; });
    job_ = nullptr;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  last_dispatch_.jobs = count;
  last_dispatch_.workers = worker_count();
  last_dispatch_.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  if (!errors_.empty()) {
    const auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace ctrtl::kernel
