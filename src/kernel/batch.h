#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ctrtl::kernel {

/// Configuration of a `BatchEngine` worker pool.
struct BatchOptions {
  /// Number of workers; 0 means one worker per available hardware thread
  /// (`std::thread::hardware_concurrency`, itself never below 1).
  std::size_t workers = 0;
};

/// Timing record of the most recent `BatchEngine` dispatch.
struct BatchDispatchStats {
  std::size_t jobs = 0;
  std::size_t workers = 0;
  std::uint64_t wall_time_ns = 0;
};

/// A fixed pool of worker threads executing index-addressed jobs.
///
/// The engine exists because a `Scheduler` is strictly single-threaded:
/// parallelism in this codebase comes from running *independent simulations*
/// concurrently (one scheduler per worker thread — the kernel's
/// current-process pointer is `thread_local`, so schedulers on different
/// threads never interfere). `run_indexed(n, fn)` invokes `fn(0..n-1)`
/// exactly once each, spread over the workers; `map` additionally collects
/// return values **by job index**, so the result vector is identical no
/// matter how the jobs interleave at runtime.
///
/// The calling thread participates as a worker, so `workers == 1` executes
/// every job inline with zero synchronization traffic — that configuration
/// is the sequential baseline the batch benchmarks compare against.
class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Total workers, the calling thread included.
  [[nodiscard]] std::size_t worker_count() const { return helpers_.size() + 1; }

  /// Runs `fn(i)` for every `i` in `[0, count)` and blocks until all jobs
  /// finished. Jobs are claimed dynamically (an atomic cursor), so workers
  /// stay busy under uneven job durations. If any job throws, the remaining
  /// jobs still run and the exception thrown by the **lowest job index** is
  /// rethrown here — again deterministic regardless of interleaving.
  ///
  /// Not reentrant: a job must not call back into its own engine.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// `run_indexed` collecting results: slot `i` of the returned vector holds
  /// `fn(i)`. `R` must be default-constructible and move-assignable.
  template <typename R, typename F>
  std::vector<R> map(std::size_t count, F&& fn) {
    std::vector<R> results(count);
    run_indexed(count, [&](std::size_t index) { results[index] = fn(index); });
    return results;
  }

  /// Jobs/workers/wall-time of the most recent `run_indexed` call.
  [[nodiscard]] const BatchDispatchStats& last_dispatch() const {
    return last_dispatch_;
  }

 private:
  void helper_loop();
  void drain();

  std::vector<std::thread> helpers_;  // worker_count() - 1 threads

  std::mutex mutex_;
  std::condition_variable work_cv_;   // helpers wait here between dispatches
  std::condition_variable done_cv_;   // run_indexed waits for helpers here
  std::uint64_t generation_ = 0;      // bumped per dispatch to wake helpers
  bool stopping_ = false;

  // Current dispatch (valid while helpers_running_ > 0 or the caller drains).
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_job_ = 0;  // guarded by mutex_
  std::size_t helpers_running_ = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;

  BatchDispatchStats last_dispatch_;
};

}  // namespace ctrtl::kernel
