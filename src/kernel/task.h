#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace ctrtl::kernel {

/// A nested awaitable coroutine for use *inside* simulation processes.
///
/// A `Process` body may `co_await` a `Task`; the task body may itself
/// `co_await` further tasks or the kernel wait awaitables. Suspension
/// propagates transitively to the kernel (the scheduler resumes the
/// innermost coroutine, see `ProcessState::resume_handle`), and completion
/// resumes the awaiting parent by symmetric transfer.
///
/// The VHDL interpreter uses this to execute statement lists recursively:
/// each statement executor is a Task, and `wait` statements suspend the
/// whole interpreter stack.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) const noexcept {
        const std::coroutine_handle<> continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> continuation) {
    handle_.promise().continuation = continuation;
    return handle_;  // symmetric transfer into the child
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ctrtl::kernel
