#pragma once

#include <cstdint>

namespace ctrtl::kernel {

/// Counters accumulated by the scheduler across a run.
///
/// `delta_cycles` is the number the paper reasons about: a clock-free model
/// with CS_MAX control steps must take exactly `CS_MAX * 6` delta cycles
/// (section 2.2). The remaining counters feed the performance-comparison
/// benches (experiment E6).
struct KernelStats {
  /// Simulation cycles executed at an unchanged physical time (delta cycles).
  std::uint64_t delta_cycles = 0;
  /// Simulation cycles that advanced physical time.
  std::uint64_t timed_cycles = 0;
  /// Signal updates that produced an event (value change).
  std::uint64_t events = 0;
  /// Signal updates applied (with or without a resulting event).
  std::uint64_t updates = 0;
  /// Process resumptions (including wait-until condition re-checks that
  /// resumed the process body).
  std::uint64_t resumptions = 0;
  /// Wait-until condition evaluations that did *not* resume the process.
  std::uint64_t condition_rejects = 0;
  /// Driver transactions scheduled by processes.
  std::uint64_t transactions = 0;
  /// Waiter-list entries visited while fanning events out to suspended
  /// processes (the update-phase sensitivity scan).
  std::uint64_t waiter_visits = 0;
  /// Event-observer invocations (conflict monitor, trace/VCD recorders).
  std::uint64_t observer_calls = 0;
  /// Wall-clock nanoseconds spent inside `Scheduler::run`, accumulated
  /// across calls. Timing-dependent — excluded from determinism
  /// comparisons (see rtl::InstanceResult::operator==).
  std::uint64_t wall_time_ns = 0;

  friend KernelStats operator-(KernelStats a, const KernelStats& b) {
    a.delta_cycles -= b.delta_cycles;
    a.timed_cycles -= b.timed_cycles;
    a.events -= b.events;
    a.updates -= b.updates;
    a.resumptions -= b.resumptions;
    a.condition_rejects -= b.condition_rejects;
    a.transactions -= b.transactions;
    a.waiter_visits -= b.waiter_visits;
    a.observer_calls -= b.observer_calls;
    a.wall_time_ns -= b.wall_time_ns;
    return a;
  }

  /// Aggregation across runs (the batch engine sums per-instance stats).
  friend KernelStats operator+(KernelStats a, const KernelStats& b) {
    a.delta_cycles += b.delta_cycles;
    a.timed_cycles += b.timed_cycles;
    a.events += b.events;
    a.updates += b.updates;
    a.resumptions += b.resumptions;
    a.condition_rejects += b.condition_rejects;
    a.transactions += b.transactions;
    a.waiter_visits += b.waiter_visits;
    a.observer_calls += b.observer_calls;
    a.wall_time_ns += b.wall_time_ns;
    return a;
  }
};

}  // namespace ctrtl::kernel
