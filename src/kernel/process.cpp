#include "kernel/process.h"

#include <stdexcept>

#include "kernel/scheduler.h"
#include "kernel/signal.h"

namespace ctrtl::kernel {

namespace detail {

namespace {
thread_local ProcessState* t_current_process = nullptr;
}  // namespace

ProcessState* current_process() {
  return t_current_process;
}

void set_current_process(ProcessState* process) {
  t_current_process = process;
}

}  // namespace detail

void ProcessState::detach_from_signals() {
  for (SignalBase* signal : sensitivity) {
    signal->remove_waiter(this);
  }
  sensitivity.clear();
}

namespace {

ProcessState* require_current() {
  ProcessState* state = detail::current_process();
  if (state == nullptr) {
    throw std::logic_error(
        "kernel wait awaitable used outside a scheduler-run process");
  }
  return state;
}

void register_waiter(ProcessState* state, std::coroutine_handle<> resume_handle,
                     std::span<SignalBase* const> signals,
                     std::function<bool()> predicate) {
  state->resume_handle = resume_handle;
  state->predicate = std::move(predicate);
  // assign() reuses the vector's capacity: a process that re-waits on the
  // same-sized sensitivity set performs no allocation after its first wait.
  state->sensitivity.assign(signals.begin(), signals.end());
  for (SignalBase* signal : state->sensitivity) {
    signal->add_waiter(state);
  }
}

}  // namespace

void WaitOn::await_suspend(std::coroutine_handle<> handle) {
  register_waiter(require_current(), handle, signals_, {});
}

void WaitUntil::await_suspend(std::coroutine_handle<> handle) {
  register_waiter(require_current(), handle, signals_, std::move(predicate_));
}

void WaitFor::await_suspend(std::coroutine_handle<> handle) {
  ProcessState* state = require_current();
  state->resume_handle = handle;
  state->scheduler->schedule_timed_wakeup(fs_delay_, state);
}

WaitOn wait_on(std::span<SignalBase* const> signals) {
  return WaitOn(signals);
}

WaitOn wait_on(std::vector<SignalBase*> signals) {
  return WaitOn(std::move(signals));
}

WaitUntil wait_until(std::span<SignalBase* const> signals,
                     std::function<bool()> predicate) {
  return WaitUntil(signals, std::move(predicate));
}

WaitUntil wait_until(std::vector<SignalBase*> signals, std::function<bool()> predicate) {
  return WaitUntil(std::move(signals), std::move(predicate));
}

WaitFor wait_for_fs(std::uint64_t fs_delay) {
  return WaitFor(fs_delay);
}

}  // namespace ctrtl::kernel
