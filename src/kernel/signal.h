#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ctrtl::kernel {

class Scheduler;
struct ProcessState;

/// Identifies one driver (one driving process) of a signal.
using DriverId = std::size_t;

/// Base class of all signals managed by a `Scheduler`.
///
/// Mirrors the VHDL signal object: it has an effective value, zero or more
/// drivers, and a waiter list of suspended processes whose `wait` statements
/// mention the signal. Value storage and resolution live in the typed
/// subclass `Signal<T>`.
class SignalBase {
 public:
  SignalBase(Scheduler& scheduler, std::string name);
  virtual ~SignalBase();

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] virtual std::size_t driver_count() const = 0;

  /// Human-readable rendering of the current effective value (for traces).
  [[nodiscard]] virtual std::string debug_value() const = 0;

  // Kernel-internal (used by the wait awaitables and the scheduler): waiter
  // list management for suspended processes.
  void add_waiter(ProcessState* process);
  void remove_waiter(ProcessState* process);

 protected:
  /// Registers this signal for the next update phase (a driver scheduled a
  /// transaction with delta delay).
  void notify_activation();

  /// Counts one scheduled transaction in the kernel statistics.
  void notify_transaction();

  /// Schedules `apply` to run at `fs_delay` femtoseconds after current time
  /// (transport delay); used by `Signal<T>::drive_after`.
  void schedule_timed_thunk(std::uint64_t fs_delay, std::function<void()> apply);

 private:
  friend class Scheduler;
  friend struct ProcessState;

  /// Applies pending driver transactions and recomputes the effective value.
  /// Returns true when the effective value changed (a VHDL *event*).
  virtual bool apply_update() = 0;

  Scheduler& scheduler_;
  std::string name_;
  std::size_t id_ = 0;
  bool pending_active_ = false;
  /// Intrusive link in the scheduler's pending-update list: activating a
  /// signal for the next delta cycle is a pointer append, with no
  /// allocation no matter how many signals fire per cycle.
  SignalBase* next_pending_ = nullptr;
  std::vector<ProcessState*> waiters_;
};

namespace detail {

template <typename T>
std::string value_to_string(const T& value) {
  if constexpr (requires(std::ostream& os, const T& v) { os << v; }) {
    std::ostringstream out;
    out << value;
    return out.str();
  } else {
    return "<opaque>";
  }
}

}  // namespace detail

/// A typed signal with VHDL driver/resolution semantics.
///
/// - Each driving process owns a `DriverId` obtained from `add_driver`.
/// - `drive` schedules the driver's new value for the *next* delta cycle
///   (the VHDL `<=` with delta delay); `drive_after` adds a transport
///   physical-time delay.
/// - A signal with more than one driver must be constructed with a
///   resolution function, exactly as VHDL requires a resolved subtype.
template <typename T>
class Signal final : public SignalBase {
 public:
  using Resolver = std::function<T(std::span<const T>)>;
  using ResolverFn = T (*)(std::span<const T>);

  Signal(Scheduler& scheduler, std::string name, T initial, Resolver resolver = {})
      : SignalBase(scheduler, std::move(name)),
        initial_(initial),
        effective_(std::move(initial)),
        resolver_(std::move(resolver)) {
    // Raw-dispatch fast path: when the resolver is a plain function (every
    // RtValue bus/port resolves with `resolve_rt`), call it directly in the
    // update phase instead of through std::function.
    if (resolver_) {
      if (const ResolverFn* fn = resolver_.template target<ResolverFn>()) {
        raw_resolver_ = *fn;
      }
    }
  }

  /// Current effective (resolved) value.
  [[nodiscard]] const T& read() const { return effective_; }

  [[nodiscard]] bool resolved() const { return static_cast<bool>(resolver_); }
  [[nodiscard]] std::size_t driver_count() const override { return drivers_.size(); }

  /// Creates a new driver whose initial contribution is `initial`.
  ///
  /// Throws `std::logic_error` when attaching a second driver to an
  /// unresolved signal — the same situation is an elaboration error in VHDL.
  DriverId add_driver(T initial) {
    if (!resolver_ && !drivers_.empty()) {
      throw std::logic_error("signal '" + name() +
                             "': multiple drivers on an unresolved signal");
    }
    drivers_.push_back(DriverSlot{std::move(initial), T{}, false});
    return drivers_.size() - 1;
  }

  /// Creates a new driver initialized to the signal's declared initial value.
  DriverId add_driver() { return add_driver(initial_); }

  /// Schedules `value` on driver `driver` for the next delta cycle. When a
  /// driver is re-driven within the same execution phase the last value wins
  /// (VHDL projected-waveform replacement).
  void drive(DriverId driver, T value) {
    DriverSlot& slot = slot_at(driver);
    slot.pending = std::move(value);
    slot.has_pending = true;
    notify_transaction();
    notify_activation();
  }

  /// Schedules `value` on driver `driver` after a transport delay of
  /// `fs_delay` femtoseconds.
  void drive_after(DriverId driver, T value, std::uint64_t fs_delay) {
    slot_at(driver);  // validate now, apply later
    notify_transaction();
    schedule_timed_thunk(fs_delay, [this, driver, value = std::move(value)]() {
      DriverSlot& slot = drivers_[driver];
      slot.pending = value;
      slot.has_pending = true;
      notify_activation();
    });
  }

  /// The contribution currently held by one driver (diagnostics/tests).
  [[nodiscard]] const T& driver_value(DriverId driver) const {
    return const_cast<Signal*>(this)->slot_at(driver).current;
  }

  /// External-engine interface: replaces the effective value directly,
  /// bypassing drivers and the update phase. Compiled engines
  /// (rtl::CompiledEngine) perform their own incremental resolution and
  /// publish the result here; the event-driven path never calls this.
  /// Returns true when the value changed — i.e. when the write is a VHDL
  /// *event* the caller must account for (stats, observers).
  bool set_effective(T value) {
    if (value == effective_) {
      return false;
    }
    effective_ = std::move(value);
    return true;
  }

  [[nodiscard]] std::string debug_value() const override {
    return detail::value_to_string(effective_);
  }

 private:
  struct DriverSlot {
    T current;
    T pending;
    bool has_pending = false;
  };

  DriverSlot& slot_at(DriverId driver) {
    if (driver >= drivers_.size()) {
      throw std::out_of_range("signal '" + name() + "': bad driver id");
    }
    return drivers_[driver];
  }

  bool apply_update() override {
    for (DriverSlot& slot : drivers_) {
      if (slot.has_pending) {
        slot.current = slot.pending;
        slot.has_pending = false;
      }
    }
    T next = effective_;
    if (resolver_) {
      // Plain array scratch buffer: std::vector<T> would break for T=bool
      // (not contiguous), and resolvers take a span. Reused across updates.
      if (scratch_capacity_ < drivers_.size()) {
        scratch_ = std::make_unique<T[]>(drivers_.size());
        scratch_capacity_ = drivers_.size();
      }
      for (std::size_t i = 0; i < drivers_.size(); ++i) {
        scratch_[i] = drivers_[i].current;
      }
      const std::span<const T> contributions(scratch_.get(), drivers_.size());
      next = raw_resolver_ ? raw_resolver_(contributions)
                           : resolver_(contributions);
    } else if (!drivers_.empty()) {
      next = drivers_.front().current;
    }
    if (next == effective_) {
      return false;
    }
    effective_ = std::move(next);
    return true;
  }

  T initial_;
  T effective_;
  std::vector<DriverSlot> drivers_;
  std::unique_ptr<T[]> scratch_;
  std::size_t scratch_capacity_ = 0;
  Resolver resolver_;
  ResolverFn raw_resolver_ = nullptr;  // set iff resolver_ wraps a plain fn
};

}  // namespace ctrtl::kernel
