#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hls/dfg.h"
#include "transfer/design.h"

namespace ctrtl::verify {

/// A symbolic value: the dataflow expression a register holds after a
/// schedule executes. This realizes the paper's §2.7/§4 program — "an
/// automatic proving procedure has been implemented, that performs the
/// verification task" of comparing RT-level descriptions with more
/// abstract descriptions — as symbolic execution of the transfer schedule.
struct DfExpr;
using DfExprPtr = std::shared_ptr<const DfExpr>;

struct DfExpr {
  enum class Kind : std::uint8_t {
    kDisc,      // never driven
    kIllegal,   // symbolic conflict / discipline violation
    kInput,     // external input (name)
    kConstant,  // literal (constant)
    kInitial,   // a register's preload treated opaquely (name)
    kOp,        // operation (op, args)
  };

  Kind kind = Kind::kDisc;
  std::string name;           // kInput / kInitial
  std::int64_t constant = 0;  // kConstant
  std::string op;             // kOp: "add", "sub", "mul16", "asr4", "sin", ...
  std::vector<DfExprPtr> args;

  [[nodiscard]] static DfExprPtr disc();
  [[nodiscard]] static DfExprPtr illegal();
  [[nodiscard]] static DfExprPtr input(std::string name);
  [[nodiscard]] static DfExprPtr literal(std::int64_t value);
  [[nodiscard]] static DfExprPtr initial(std::string reg);
  [[nodiscard]] static DfExprPtr make(std::string op, std::vector<DfExprPtr> args);
};

/// Canonical text form: commutative operations (add, mul*, min, max) sort
/// their arguments, so structurally equal dataflows print identically.
[[nodiscard]] std::string canonical(const DfExprPtr& expr);

/// Structural equivalence modulo commutativity.
[[nodiscard]] bool equivalent(const DfExprPtr& a, const DfExprPtr& b);

/// Result of symbolically executing a design's schedule.
struct DataflowResult {
  /// Expression held by each register after the final control step.
  std::map<std::string, DfExprPtr> registers;
  /// True when any symbolic conflict/discipline violation occurred.
  bool saw_illegal = false;
};

/// Symbolic execution of the schedule with the same timing discipline as
/// the reference semantics: MACC accumulations normalize to add/mul nodes,
/// copies vanish, ALU ops name themselves — so dataflows are comparable
/// across different schedules, bindings, and module choices.
/// Throws std::invalid_argument when the design does not validate.
[[nodiscard]] DataflowResult extract_dataflow(const transfer::Design& design);

/// The abstract side: the expression a DFG output computes, in the same
/// node vocabulary ("mul0" for the integer multiply).
[[nodiscard]] DfExprPtr dfg_expr(const hls::Dfg& dfg, const hls::ValueRef& ref);

/// The paper's HLS verification flow, fully automatic: every DFG output
/// must be dataflow-equivalent to the register the emitted design leaves it
/// in. Returns a list of mismatching outputs (empty = verified).
[[nodiscard]] std::vector<std::string> check_hls_equivalence(
    const hls::Dfg& dfg, const transfer::Design& design,
    const std::map<std::string, std::string>& output_registers);

}  // namespace ctrtl::verify
