#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/scheduler.h"
#include "rtl/model.h"

namespace ctrtl::verify {

/// One recorded signal event.
struct TraceEvent {
  kernel::SimTime time;
  std::string signal;
  std::string value;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Records every signal event of a scheduler run. Attach before running,
/// detach (or destroy) afterwards; the recorder replaces the scheduler's
/// event observer while attached.
class TraceRecorder {
 public:
  explicit TraceRecorder(kernel::Scheduler& scheduler);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::vector<TraceEvent> events_for(const std::string& signal) const;
  void clear() { events_.clear(); }

  /// One line per event: "<fs> fs +<delta>d  <signal> = <value>".
  [[nodiscard]] std::string to_text() const;

 private:
  kernel::Scheduler& scheduler_;
  std::size_t observer_id_ = 0;
  std::vector<TraceEvent> events_;
};

/// A register write trace: the sequence of (step, register, value) commits.
/// This is the observable behaviour used for abstract-vs-clocked
/// equivalence — both implementations must perform the same writes in the
/// same control-step order.
struct RegisterWrite {
  unsigned step = 0;
  std::string reg;
  rtl::RtValue value;

  friend bool operator==(const RegisterWrite&, const RegisterWrite&) = default;
};

[[nodiscard]] std::string to_string(const RegisterWrite& write);

/// Extracts the register-write trace from a clock-free model run: watches
/// each register's output port and maps event deltas back to control steps.
/// Must be constructed before the model runs.
class RegisterWriteTrace {
 public:
  explicit RegisterWriteTrace(rtl::RtModel& model);
  ~RegisterWriteTrace();

  RegisterWriteTrace(const RegisterWriteTrace&) = delete;
  RegisterWriteTrace& operator=(const RegisterWriteTrace&) = delete;

  [[nodiscard]] const std::vector<RegisterWrite>& writes() const { return writes_; }

 private:
  rtl::RtModel& model_;
  std::size_t observer_id_ = 0;
  std::vector<RegisterWrite> writes_;
};

}  // namespace ctrtl::verify
