#include "verify/semantics.h"

#include <optional>
#include <stdexcept>

#include "transfer/mapping.h"
#include "transfer/module_sim.h"
#include "transfer/walk.h"

namespace ctrtl::verify {

namespace {

using rtl::Phase;
using rtl::RtValue;
using transfer::Endpoint;
using transfer::ModuleSim;
using transfer::TransInstance;

}  // namespace

EvalResult evaluate(const transfer::Design& design,
                    const std::map<std::string, std::int64_t>& inputs) {
  return evaluate(design, transfer::to_instances(design.transfers), inputs);
}

EvalResult evaluate(const transfer::Design& design,
                    std::span<const TransInstance> instances,
                    const std::map<std::string, std::int64_t>& inputs,
                    const ResolutionObserver& observer) {
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("reference semantics: design does not validate:\n" +
                                diags.to_text());
  }

  // --- static state ----------------------------------------------------------
  std::map<std::string, RtValue> registers;
  for (const transfer::RegisterDecl& reg : design.registers) {
    registers[reg.name] = reg.initial.has_value() ? RtValue::of(*reg.initial)
                                                  : RtValue::disc();
  }
  std::map<std::string, RtValue> constants;
  for (const transfer::ConstantDecl& constant : design.constants) {
    constants[constant.name] = RtValue::of(constant.value);
  }
  std::map<std::string, RtValue> input_values;
  for (const transfer::InputDecl& input : design.inputs) {
    const auto it = inputs.find(input.name);
    input_values[input.name] =
        it == inputs.end() ? RtValue::disc() : RtValue::of(it->second);
  }
  std::map<std::string, ModuleSim> modules;
  for (const transfer::ModuleDecl& module : design.modules) {
    modules.emplace(module.name, ModuleSim(module));
  }

  const transfer::InstanceWalker walker(instances, design.cs_max);

  EvalResult result;
  result.expected_delta_cycles =
      static_cast<std::uint64_t>(design.cs_max) * rtl::kPhasesPerStep;

  // Transfer-driven sink values visible at the phase being evaluated.
  // While computing phase p, `visible` still holds the pred(p) values —
  // exactly what an instance firing at pred(p) reads from a bus source.
  std::map<std::string, RtValue> visible;

  const auto source_value = [&](const Endpoint& source) -> RtValue {
    switch (source.kind) {
      case Endpoint::Kind::kRegisterOut:
        return registers.at(source.resource);
      case Endpoint::Kind::kConstant: {
        const auto it = constants.find(source.resource);
        if (it != constants.end()) {
          return it->second;
        }
        // Implicit op-code constants.
        std::int64_t code = 0;
        if (transfer::parse_op_constant_name(source.resource, code)) {
          return RtValue::of(code);
        }
        throw std::logic_error("reference semantics: unknown constant '" +
                               source.resource + "'");
      }
      case Endpoint::Kind::kInput:
        return input_values.at(source.resource);
      case Endpoint::Kind::kModuleOut:
        return modules.at(source.resource).out();
      case Endpoint::Kind::kBus: {
        const auto it = visible.find(source.resource);
        return it == visible.end() ? RtValue::disc() : it->second;
      }
      default:
        throw std::logic_error("reference semantics: bad source endpoint");
    }
  };

  for (unsigned step = 1; step <= design.cs_max; ++step) {
    for (int phase_index = 0; phase_index < rtl::kPhasesPerStep; ++phase_index) {
      const Phase phase = rtl::phase_from_index(phase_index);

      // 1. Resolve every transfer-driven sink visible at this phase: the
      //    contributions come from instances that fired in the previous
      //    phase of the same step.
      std::map<std::string, std::vector<RtValue>> contributions;
      if (phase != rtl::kPhaseLow) {
        for (const TransInstance* instance :
             walker.fires(step, rtl::pred(phase))) {
          contributions[to_string(instance->sink)].push_back(
              source_value(instance->source));
        }
      }
      std::map<std::string, RtValue> next_visible;
      for (const auto& [sink, values] : contributions) {
        next_visible[sink] = rtl::resolve_rt(values);
      }
      // Conflict events: a monitored sink changing *to* ILLEGAL.
      for (const auto& [sink, value] : next_visible) {
        if (observer) {
          observer(Resolution{sink, step, phase, value});
        }
        if (!value.is_illegal()) {
          continue;
        }
        const auto prev_it = visible.find(sink);
        const bool was_illegal =
            prev_it != visible.end() && prev_it->second.is_illegal();
        if (!was_illegal) {
          result.conflicts.push_back(rtl::Conflict{sink, step, phase});
        }
      }
      visible = std::move(next_visible);

      // 2. Phase actions.
      if (phase == Phase::kCm) {
        for (auto& [name, module] : modules) {
          std::vector<RtValue> operands(module.decl().num_inputs(),
                                        RtValue::disc());
          for (unsigned port = 0; port < operands.size(); ++port) {
            const auto it =
                visible.find(to_string(Endpoint::module_in(name, port)));
            if (it != visible.end()) {
              operands[port] = it->second;
            }
          }
          RtValue op = RtValue::disc();
          if (module.decl().has_op_port()) {
            const auto it = visible.find(to_string(Endpoint::module_op(name)));
            if (it != visible.end()) {
              op = it->second;
            }
          }
          module.step(operands, op);
        }
      } else if (phase == Phase::kCr) {
        for (auto& [name, value] : registers) {
          const auto it = visible.find(to_string(Endpoint::register_in(name)));
          if (it != visible.end() && !it->second.is_disc()) {
            value = it->second;
          }
        }
      }
    }
    // Between steps every single-phase transfer window has closed: the
    // next step's `ra` phase sees all transfer-driven sinks at DISC.
    visible.clear();
  }

  result.registers = std::move(registers);
  return result;
}

}  // namespace ctrtl::verify
