#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "rtl/model.h"
#include "transfer/design.h"
#include "transfer/tuple.h"

namespace ctrtl::verify {

/// Result of the reference evaluation of a design.
struct EvalResult {
  /// Final register values after cs_max control steps.
  std::map<std::string, rtl::RtValue> registers;
  /// ILLEGAL events in (step, phase) order — same records the simulator's
  /// conflict monitor produces.
  std::vector<rtl::Conflict> conflicts;
  /// What a delta-cycle-faithful simulation must cost: cs_max * 6.
  std::uint64_t expected_delta_cycles = 0;
};

/// One driven-sink resolution of the reference transition system: the sink
/// was driven (>= 1 contribution) at `pred(visible_phase)` of `step` and
/// the resolved value becomes visible at `visible_phase`. Streamed to the
/// `ResolutionObserver` of `evaluate` — this is how the conflict-oracle
/// comparison mode sees every concrete DISC/value/ILLEGAL outcome, not just
/// the ILLEGAL transitions the conflict record keeps.
struct Resolution {
  std::string sink;
  unsigned step = 0;
  rtl::Phase visible_phase = rtl::Phase::kRb;
  rtl::RtValue value;
};

using ResolutionObserver = std::function<void(const Resolution&)>;

/// The paper's *dedicated formal semantics* of register transfer models
/// (section 2.7), implemented as a direct transition system over
/// (step, phase) — deliberately **without** the event-driven kernel.
///
/// Each control step evaluates its six phases in order; a value driven by a
/// TRANS instance at phase p is visible at phase succ(p); buses and ports
/// resolve contributions with the section 2.3 function; modules compute at
/// `cm` with their pipeline discipline; registers latch at `cr`.
///
/// The property test `semantics == simulation` realizes the paper's claim
/// that "the close relationship of the register transfer model to the VHDL
/// simulation delta cycle allows to prove the consistency of the dedicated
/// semantics ... with VHDL simulation semantics".
///
/// Throws std::invalid_argument when the design does not validate.
[[nodiscard]] EvalResult evaluate(
    const transfer::Design& design,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Same transition system over an explicit TRANS instance stream instead of
/// the design's own tuples — the fault-injection and generated-corpus entry
/// point (a `fault::FaultPlan` or a generator emits the stream directly).
/// `observer`, when non-null, receives every driven-sink resolution in
/// execution order (see `Resolution`).
[[nodiscard]] EvalResult evaluate(
    const transfer::Design& design,
    std::span<const transfer::TransInstance> instances,
    const std::map<std::string, std::int64_t>& inputs = {},
    const ResolutionObserver& observer = nullptr);

}  // namespace ctrtl::verify
