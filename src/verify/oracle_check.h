#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "fault/inject.h"
#include "rtl/model.h"
#include "transfer/design.h"
#include "transfer/tuple.h"
#include "verify/equivalence.h"

namespace ctrtl::verify {

/// One predicted DISC outcome: a sink that is driven (>= 1 TRANS instance
/// fires into it) at `pred(visible_phase)` of `step` yet resolves to DISC —
/// a vanished operand, an uninitialized register read, or a dropped/faulted
/// contribution. The ILLEGAL counterpart is an `rtl::Conflict` record.
struct DiscSite {
  std::string signal;
  unsigned step = 0;
  rtl::Phase visible_phase = rtl::Phase::kRb;

  friend bool operator==(const DiscSite&, const DiscSite&) = default;
  friend auto operator<=>(const DiscSite&, const DiscSite&) = default;
};

[[nodiscard]] std::string to_string(const DiscSite& site);

/// Everything a conflict oracle claims about a run, without simulating:
/// the exact conflict record (every ILLEGAL transition, with its
/// (step, phase) and signal), every driven-sink DISC resolution, and the
/// final DISC/ILLEGAL/value classification of each register. Produced by
/// `gen::predict_outcomes`; checked against simulation below.
struct OutcomePrediction {
  /// Predicted conflict records, sorted by (step, phase, signal).
  std::vector<rtl::Conflict> conflicts;
  /// Predicted DISC resolutions of driven sinks, sorted.
  std::vector<DiscSite> disc_sites;
  /// Predicted final classification of every register.
  std::map<std::string, rtl::RtValue::Kind> registers;
};

/// Oracle-vs-simulation comparison mode: runs the instance stream through
/// the event kernel AND the reference transition semantics, and checks
///   - the simulated conflict record equals `prediction.conflicts` exactly
///     as a set — zero false positives, zero false negatives;
///   - every driven-sink DISC resolution of the reference semantics equals
///     `prediction.disc_sites` exactly as a set;
///   - each register's final simulated value has the predicted
///     DISC/ILLEGAL/value classification;
///   - (cross-check) the reference semantics and the event kernel agree on
///     the conflict set, so the two predicted-vs-observed comparisons above
///     are anchored to the same behaviour.
[[nodiscard]] CheckReport check_prediction(
    const transfer::Design& design,
    std::span<const transfer::TransInstance> instances,
    const OutcomePrediction& prediction,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Same check over the design's canonical instance stream.
[[nodiscard]] CheckReport check_prediction(
    const transfer::Design& design, const OutcomePrediction& prediction,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Same check over a faulted design: the prediction must describe the
/// *faulted* stream (re-predicted under the plan), and the simulation side
/// executes the identical transformed stream through the fault facade.
[[nodiscard]] CheckReport check_prediction(
    const fault::FaultedDesign& faulted, const OutcomePrediction& prediction,
    const std::map<std::string, std::int64_t>& inputs = {});

}  // namespace ctrtl::verify
