#include "verify/random_design.h"

#include <random>
#include <stdexcept>

#include "rtl/modules.h"

namespace ctrtl::verify {

transfer::Design random_design(const RandomDesignOptions& options) {
  using transfer::ModuleKind;
  using transfer::RegisterTransfer;

  if (options.num_registers < 3 || options.num_buses < 3) {
    throw std::invalid_argument("random_design: needs >= 3 registers and buses");
  }

  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<int> small(0, 9);

  transfer::Design design;
  design.name = "rand" + std::to_string(options.seed);

  for (unsigned i = 0; i < options.num_registers; ++i) {
    // Registers 0 and 1 are read-only seeds (always small values); the rest
    // start initialized too so every operand carries a value.
    design.registers.push_back({"R" + std::to_string(i), small(rng)});
  }
  for (unsigned i = 0; i < options.num_buses; ++i) {
    design.buses.push_back({"B" + std::to_string(i)});
  }
  design.modules = {{"ADD", ModuleKind::kAdd, 1},
                    {"SUB", ModuleKind::kSub, 1},
                    {"MUL", ModuleKind::kMul, 2, 0}};
  if (options.use_alu) {
    design.modules.push_back({"ALU", ModuleKind::kAlu, 1});
  }

  const auto reg = [&](unsigned index) { return "R" + std::to_string(index); };
  const auto bus = [&](unsigned index) { return "B" + std::to_string(index); };
  std::uniform_int_distribution<unsigned> any_reg(0, options.num_registers - 1);
  std::uniform_int_distribution<unsigned> dest_reg(2, options.num_registers - 1);
  std::uniform_int_distribution<unsigned> seed_reg(0, 1);
  std::uniform_int_distribution<unsigned> any_bus(0, options.num_buses - 1);
  std::uniform_int_distribution<unsigned> module_pick(
      0, options.use_alu ? 3u : 2u);
  std::uniform_int_distribution<unsigned> natural_pick(0, 1);  // ADD or MUL

  unsigned step = 1;
  for (unsigned i = 0; i < options.num_transfers; ++i) {
    // Map {0,1} onto {ADD, MUL} when only natural results are allowed.
    const unsigned which =
        options.naturals_only ? (natural_pick(rng) == 0 ? 0u : 2u)
                              : module_pick(rng);
    std::string module;
    unsigned latency = 1;
    std::optional<std::int64_t> op;
    unsigned src_a = any_reg(rng);
    unsigned src_b = any_reg(rng);
    switch (which) {
      case 0:
        module = "ADD";
        break;
      case 1:
        module = "SUB";
        break;
      case 2:
        module = "MUL";
        latency = 2;
        // Overflow containment: multiply only seed registers.
        src_a = seed_reg(rng);
        src_b = seed_reg(rng);
        break;
      default: {
        module = "ALU";
        const std::int64_t codes[] = {rtl::alu_ops::kAdd, rtl::alu_ops::kSub,
                                      rtl::alu_ops::kMin, rtl::alu_ops::kMax};
        op = codes[static_cast<std::size_t>(small(rng)) % 4];
        break;
      }
    }
    // Distinct operand buses prevent intra-tuple conflicts.
    const unsigned bus_a = any_bus(rng);
    const unsigned bus_b = (bus_a + 1) % options.num_buses;
    const unsigned bus_w = any_bus(rng);
    design.transfers.push_back(RegisterTransfer::full(
        reg(src_a), bus(bus_a), reg(src_b), bus(bus_b), step, module,
        step + latency, bus(bus_w), reg(dest_reg(rng)), op));
    step += latency + 1;  // fresh window: no cross-tuple collisions
  }
  design.cs_max = step + 1;

  if (options.inject_conflicts && !design.transfers.empty()) {
    // Double-book the bus of an existing tuple's first operand: an extra
    // read of a different register onto the same (step, bus).
    std::uniform_int_distribution<std::size_t> pick_tuple(
        0, design.transfers.size() - 1);
    const RegisterTransfer& victim = design.transfers[pick_tuple(rng)];
    RegisterTransfer extra;
    const unsigned other =
        (victim.operand_a->source.resource == reg(0)) ? 1 : 0;
    extra.operand_a = transfer::OperandPath{
        transfer::Endpoint::register_out(reg(other)), victim.operand_a->bus};
    extra.read_step = victim.read_step;
    extra.module = victim.module;
    if (victim.op.has_value()) {
      extra.op = victim.op;
    }
    design.transfers.push_back(std::move(extra));
  }
  return design;
}

}  // namespace ctrtl::verify
