#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/inject.h"
#include "transfer/design.h"
#include "verify/semantics.h"
#include "verify/trace.h"

namespace ctrtl::verify {

/// Outcome of a consistency/equivalence check; empty `mismatches` means the
/// two sides agree.
struct CheckReport {
  std::vector<std::string> mismatches;

  [[nodiscard]] bool consistent() const { return mismatches.empty(); }
  [[nodiscard]] std::string to_text() const;
};

/// The paper's semantics-consistency theorem, checked mechanically: runs a
/// design through BOTH the reference transition-system semantics
/// (`verify::evaluate`) and the event-driven kernel (`transfer::build_model`
/// + simulate), and compares
///   - final register values,
///   - the full conflict record (signal, step, phase — order-insensitive),
///   - the delta-cycle count against cs_max * 6.
[[nodiscard]] CheckReport check_consistency(
    const transfer::Design& design,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Differential check of the two execution engines: elaborates `design`
/// once with paper-faithful TRANS processes (event kernel) and once with
/// the compiled static-schedule engine (`rtl::TransferMode::kCompiled`),
/// runs both on the same inputs, and compares
///   - final register values,
///   - the full conflict record (exact order — the compiled engine pins
///     conflicts to the same (step, phase) delta cycles),
///   - delta-cycle counts and the event/update/transaction counters,
///   - the complete signal-event trace (every event, in order, with the
///     same SimTime — i.e. VCD output is identical).
///
/// The lane engine (`rtl::LaneEngine`) is checked as a third side against
/// the event kernel — final registers, ordered conflicts, and all counters,
/// both as a single-lane block and as an inner lane of a multi-lane block.
[[nodiscard]] CheckReport check_engine_equivalence(
    const transfer::Design& design,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Fault-sweep mode of the same differential check: all three engines
/// execute the *faulted* instance stream (`fault::apply_plan` output)
/// through the fault facade, and must agree on everything the clean check
/// compares — registers, ordered conflicts, counters, and the full event
/// trace. This is the tentpole property: a fault plan is an instance-stream
/// transformation, so engine equivalence must survive any plan.
[[nodiscard]] CheckReport check_engine_equivalence(
    const fault::FaultedDesign& faulted,
    const std::map<std::string, std::int64_t>& inputs = {});

/// Compares two register-write traces (e.g. abstract vs clocked
/// implementations of the same schedule). Writes must agree in per-register
/// order and value; `ignore_preload` drops step-0 entries (initial loads)
/// before comparing.
[[nodiscard]] CheckReport compare_write_traces(
    const std::vector<RegisterWrite>& expected,
    const std::vector<RegisterWrite>& actual, bool ignore_preload = false);

}  // namespace ctrtl::verify
