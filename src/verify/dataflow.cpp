#include "verify/dataflow.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "rtl/modules.h"
#include "transfer/mapping.h"

namespace ctrtl::verify {

using rtl::Phase;
using transfer::Endpoint;
using transfer::TransInstance;

DfExprPtr DfExpr::disc() {
  static const DfExprPtr instance = std::make_shared<DfExpr>();
  return instance;
}

DfExprPtr DfExpr::illegal() {
  auto expr = std::make_shared<DfExpr>();
  expr->kind = Kind::kIllegal;
  return expr;
}

DfExprPtr DfExpr::input(std::string name) {
  auto expr = std::make_shared<DfExpr>();
  expr->kind = Kind::kInput;
  expr->name = std::move(name);
  return expr;
}

DfExprPtr DfExpr::literal(std::int64_t value) {
  auto expr = std::make_shared<DfExpr>();
  expr->kind = Kind::kConstant;
  expr->constant = value;
  return expr;
}

DfExprPtr DfExpr::initial(std::string reg) {
  auto expr = std::make_shared<DfExpr>();
  expr->kind = Kind::kInitial;
  expr->name = std::move(reg);
  return expr;
}

DfExprPtr DfExpr::make(std::string op, std::vector<DfExprPtr> args) {
  auto expr = std::make_shared<DfExpr>();
  expr->kind = Kind::kOp;
  expr->op = std::move(op);
  expr->args = std::move(args);
  return expr;
}

namespace {

bool is_commutative(const std::string& op) {
  return op == "add" || op == "min" || op == "max" || op.starts_with("mul");
}

}  // namespace

std::string canonical(const DfExprPtr& expr) {
  if (!expr) {
    return "<null>";
  }
  switch (expr->kind) {
    case DfExpr::Kind::kDisc:
      return "DISC";
    case DfExpr::Kind::kIllegal:
      return "ILLEGAL";
    case DfExpr::Kind::kInput:
      return "$" + expr->name;
    case DfExpr::Kind::kConstant:
      return std::to_string(expr->constant);
    case DfExpr::Kind::kInitial:
      return "@" + expr->name;
    case DfExpr::Kind::kOp: {
      std::vector<std::string> parts;
      parts.reserve(expr->args.size());
      for (const DfExprPtr& arg : expr->args) {
        parts.push_back(canonical(arg));
      }
      if (is_commutative(expr->op)) {
        std::sort(parts.begin(), parts.end());
      }
      std::ostringstream out;
      out << expr->op << '(';
      for (std::size_t i = 0; i < parts.size(); ++i) {
        out << (i != 0 ? "," : "") << parts[i];
      }
      out << ')';
      return out.str();
    }
  }
  return "<corrupt>";
}

bool equivalent(const DfExprPtr& a, const DfExprPtr& b) {
  return canonical(a) == canonical(b);
}

// ---------------------------------------------------------------------------
// Symbolic execution of the schedule
// ---------------------------------------------------------------------------

namespace {

/// Symbolic analog of transfer::ModuleSim.
class SymbolicUnit {
 public:
  explicit SymbolicUnit(const transfer::ModuleDecl& decl) : decl_(&decl) {
    pipeline_.assign(decl.latency, DfExpr::disc());
  }

  [[nodiscard]] const DfExprPtr& out() const { return out_; }

  DfExprPtr step(std::vector<DfExprPtr> operands, const DfExprPtr& op,
                 bool& saw_illegal) {
    if (decl_->latency == 0) {
      out_ = evaluate(std::move(operands), op, saw_illegal);
      return out_;
    }
    out_ = pipeline_.back();
    const DfExprPtr next =
        poisoned_ ? DfExpr::illegal() : evaluate(std::move(operands), op, saw_illegal);
    pipeline_.pop_back();
    pipeline_.push_front(next);
    if (next->kind == DfExpr::Kind::kIllegal) {
      poisoned_ = true;
    }
    return out_;
  }

 private:
  [[nodiscard]] DfExprPtr evaluate(std::vector<DfExprPtr> operands,
                                   const DfExprPtr& op, bool& saw_illegal) {
    const auto illegal = [&] {
      saw_illegal = true;
      return DfExpr::illegal();
    };
    for (const DfExprPtr& operand : operands) {
      if (operand->kind == DfExpr::Kind::kIllegal) {
        return illegal();
      }
    }
    const bool has_op = decl_->has_op_port();
    std::int64_t op_code = 0;
    if (has_op) {
      if (op->kind == DfExpr::Kind::kIllegal) {
        return illegal();
      }
      if (op->kind == DfExpr::Kind::kDisc) {
        for (const DfExprPtr& operand : operands) {
          if (operand->kind != DfExpr::Kind::kDisc) {
            return illegal();
          }
        }
        return decl_->kind == transfer::ModuleKind::kMacc ? acc_ : DfExpr::disc();
      }
      if (op->kind != DfExpr::Kind::kConstant) {
        throw std::invalid_argument(
            "symbolic execution: op codes must be literal constants");
      }
      op_code = op->constant;
    }
    const unsigned arity = arity_for(op_code);
    unsigned present = 0;
    for (unsigned i = 0; i < arity && i < operands.size(); ++i) {
      if (operands[i]->kind != DfExpr::Kind::kDisc) {
        ++present;
      }
    }
    if (present == 0 && !has_op) {
      return DfExpr::disc();
    }
    if (present != arity) {
      return illegal();
    }
    operands.resize(arity);
    return apply(std::move(operands), op_code);
  }

  [[nodiscard]] unsigned arity_for(std::int64_t op_code) const {
    switch (decl_->kind) {
      case transfer::ModuleKind::kAlu: {
        static const rtl::AluModule::OpTable kOps = rtl::make_standard_alu_ops();
        return kOps.at(op_code).arity;
      }
      case transfer::ModuleKind::kMacc:
        switch (op_code) {
          case rtl::MaccModule::kOpClear:
          case rtl::MaccModule::kOpHold:
            return 0;
          case rtl::MaccModule::kOpLoad:
            return 1;
          default:
            return 2;
        }
      case transfer::ModuleKind::kCordic:
        return 1;
      default:
        return decl_->num_inputs();
    }
  }

  [[nodiscard]] DfExprPtr apply(std::vector<DfExprPtr> v, std::int64_t op_code) {
    const std::string mul_name = "mul" + std::to_string(decl_->frac_bits);
    switch (decl_->kind) {
      case transfer::ModuleKind::kAdd:
        return DfExpr::make("add", std::move(v));
      case transfer::ModuleKind::kSub:
        return DfExpr::make("sub", std::move(v));
      case transfer::ModuleKind::kMul:
        return DfExpr::make(mul_name, std::move(v));
      case transfer::ModuleKind::kCopy:
        return v[0];  // copies vanish (the direct-link helper is transparent)
      case transfer::ModuleKind::kAlu:
        switch (op_code) {
          case rtl::alu_ops::kAdd:
            return DfExpr::make("add", std::move(v));
          case rtl::alu_ops::kSub:
            return DfExpr::make("sub", std::move(v));
          case rtl::alu_ops::kMin:
            return DfExpr::make("min", std::move(v));
          case rtl::alu_ops::kMax:
            return DfExpr::make("max", std::move(v));
          case rtl::alu_ops::kPassA:
            return v[0];
          case rtl::alu_ops::kPassB:
            return v[1];
          case rtl::alu_ops::kNegA:
            return DfExpr::make("neg", std::move(v));
          default:
            if (op_code >= rtl::alu_ops::kRshiftBase &&
                op_code <= rtl::alu_ops::kRshiftMax) {
              return DfExpr::make(
                  "asr" + std::to_string(op_code - rtl::alu_ops::kRshiftBase),
                  std::move(v));
            }
            throw std::invalid_argument("symbolic execution: unknown ALU op");
        }
      case transfer::ModuleKind::kMacc:
        switch (op_code) {
          case rtl::MaccModule::kOpClear:
            acc_ = DfExpr::literal(0);
            break;
          case rtl::MaccModule::kOpHold:
            break;
          case rtl::MaccModule::kOpLoad:
            acc_ = v[0];
            break;
          default:
            // MACC steps normalize to add/mul nodes so accumulations
            // compare equal to the same computation on ALU + MULT units.
            acc_ = DfExpr::make(
                "add", {acc_, DfExpr::make(mul_name, std::move(v))});
            break;
        }
        return acc_;
      case transfer::ModuleKind::kCordic:
        return DfExpr::make(
            op_code == rtl::CordicModule::kOpSin ? "sin" : "cos", std::move(v));
    }
    throw std::logic_error("symbolic execution: corrupt module kind");
  }

  const transfer::ModuleDecl* decl_;
  std::deque<DfExprPtr> pipeline_;
  DfExprPtr out_ = DfExpr::disc();
  DfExprPtr acc_ = DfExpr::literal(0);
  bool poisoned_ = false;
};

DfExprPtr resolve_symbolic(const std::vector<DfExprPtr>& contributions,
                           bool& saw_illegal) {
  DfExprPtr unique = DfExpr::disc();
  bool found = false;
  for (const DfExprPtr& value : contributions) {
    if (value->kind == DfExpr::Kind::kDisc) {
      continue;
    }
    if (value->kind == DfExpr::Kind::kIllegal || found) {
      saw_illegal = true;
      return DfExpr::illegal();
    }
    unique = value;
    found = true;
  }
  return unique;
}

}  // namespace

DataflowResult extract_dataflow(const transfer::Design& design) {
  common::DiagnosticBag diags;
  if (!validate(design, diags)) {
    throw std::invalid_argument("extract_dataflow: design does not validate:\n" +
                                diags.to_text());
  }

  DataflowResult result;
  std::map<std::string, DfExprPtr> registers;
  for (const transfer::RegisterDecl& reg : design.registers) {
    registers[reg.name] = reg.initial.has_value()
                              ? DfExpr::literal(*reg.initial)
                              : DfExpr::disc();
  }
  std::map<std::string, DfExprPtr> constants;
  for (const transfer::ConstantDecl& constant : design.constants) {
    constants[constant.name] = DfExpr::literal(constant.value);
  }
  std::map<std::string, SymbolicUnit> units;
  for (const transfer::ModuleDecl& module : design.modules) {
    units.emplace(module.name, SymbolicUnit(module));
  }

  const std::vector<TransInstance> instances =
      transfer::to_instances(design.transfers);

  std::map<std::string, DfExprPtr> visible;

  const auto source_value = [&](const Endpoint& source) -> DfExprPtr {
    switch (source.kind) {
      case Endpoint::Kind::kRegisterOut:
        return registers.at(source.resource);
      case Endpoint::Kind::kConstant: {
        const auto it = constants.find(source.resource);
        if (it != constants.end()) {
          return it->second;
        }
        std::int64_t code = 0;
        if (transfer::parse_op_constant_name(source.resource, code)) {
          return DfExpr::literal(code);
        }
        throw std::logic_error("extract_dataflow: unknown constant");
      }
      case Endpoint::Kind::kInput:
        return DfExpr::input(source.resource);
      case Endpoint::Kind::kModuleOut:
        return units.at(source.resource).out();
      case Endpoint::Kind::kBus: {
        const auto it = visible.find(source.resource);
        return it == visible.end() ? DfExpr::disc() : it->second;
      }
      default:
        throw std::logic_error("extract_dataflow: bad source endpoint");
    }
  };

  for (unsigned step = 1; step <= design.cs_max; ++step) {
    for (int phase_index = 0; phase_index < rtl::kPhasesPerStep; ++phase_index) {
      const Phase phase = rtl::phase_from_index(phase_index);
      std::map<std::string, std::vector<DfExprPtr>> contributions;
      if (phase != rtl::kPhaseLow) {
        const Phase drive_phase = rtl::pred(phase);
        for (const TransInstance& instance : instances) {
          if (instance.step == step && instance.phase == drive_phase) {
            contributions[to_string(instance.sink)].push_back(
                source_value(instance.source));
          }
        }
      }
      std::map<std::string, DfExprPtr> next_visible;
      for (const auto& [sink, values] : contributions) {
        next_visible[sink] = resolve_symbolic(values, result.saw_illegal);
      }
      visible = std::move(next_visible);

      if (phase == Phase::kCm) {
        for (auto& [name, unit] : units) {
          const transfer::ModuleDecl* decl = design.find_module(name);
          std::vector<DfExprPtr> operands(decl->num_inputs(), DfExpr::disc());
          for (unsigned port = 0; port < operands.size(); ++port) {
            const auto it =
                visible.find(to_string(Endpoint::module_in(name, port)));
            if (it != visible.end()) {
              operands[port] = it->second;
            }
          }
          DfExprPtr op = DfExpr::disc();
          if (decl->has_op_port()) {
            const auto it = visible.find(to_string(Endpoint::module_op(name)));
            if (it != visible.end()) {
              op = it->second;
            }
          }
          unit.step(std::move(operands), op, result.saw_illegal);
        }
      } else if (phase == Phase::kCr) {
        for (auto& [name, value] : registers) {
          const auto it = visible.find(to_string(Endpoint::register_in(name)));
          if (it != visible.end() && it->second->kind != DfExpr::Kind::kDisc) {
            value = it->second;
          }
        }
      }
    }
    visible.clear();
  }

  result.registers = std::move(registers);
  return result;
}

DfExprPtr dfg_expr(const hls::Dfg& dfg, const hls::ValueRef& ref) {
  switch (ref.kind) {
    case hls::ValueRef::Kind::kInput:
      return DfExpr::input(ref.input);
    case hls::ValueRef::Kind::kConstant:
      return DfExpr::literal(ref.constant);
    case hls::ValueRef::Kind::kNode: {
      const hls::Dfg::Node& node = dfg.nodes()[ref.node];
      std::vector<DfExprPtr> args;
      args.reserve(node.args.size());
      for (const hls::ValueRef& arg : node.args) {
        args.push_back(dfg_expr(dfg, arg));
      }
      switch (node.kind) {
        case hls::OpKind::kAdd:
          return DfExpr::make("add", std::move(args));
        case hls::OpKind::kSub:
          return DfExpr::make("sub", std::move(args));
        case hls::OpKind::kMul:
          return DfExpr::make("mul0", std::move(args));
        case hls::OpKind::kMin:
          return DfExpr::make("min", std::move(args));
        case hls::OpKind::kMax:
          return DfExpr::make("max", std::move(args));
        case hls::OpKind::kNeg:
          return DfExpr::make("neg", std::move(args));
        case hls::OpKind::kCopy:
          return args[0];
      }
      throw std::logic_error("dfg_expr: corrupt op kind");
    }
  }
  throw std::logic_error("dfg_expr: corrupt ref");
}

std::vector<std::string> check_hls_equivalence(
    const hls::Dfg& dfg, const transfer::Design& design,
    const std::map<std::string, std::string>& output_registers) {
  const DataflowResult extracted = extract_dataflow(design);
  std::vector<std::string> mismatches;
  for (const auto& [output, reg] : output_registers) {
    const auto ref_it = dfg.outputs().find(output);
    if (ref_it == dfg.outputs().end()) {
      mismatches.push_back(output + ": not a DFG output");
      continue;
    }
    const DfExprPtr expected = dfg_expr(dfg, ref_it->second);
    const auto reg_it = extracted.registers.find(reg);
    if (reg_it == extracted.registers.end()) {
      mismatches.push_back(output + ": register '" + reg + "' missing");
      continue;
    }
    if (!equivalent(expected, reg_it->second)) {
      mismatches.push_back(output + ": expected " + canonical(expected) +
                           ", design computes " + canonical(reg_it->second));
    }
  }
  return mismatches;
}

}  // namespace ctrtl::verify
