#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/trace.h"

namespace ctrtl::verify {

/// Options for VCD (IEEE 1364 value change dump) export.
struct VcdOptions {
  /// Timescale text written to the header. Clock-free runs use delta cycles
  /// as the time axis ("1 ns" per delta reads nicely in viewers); clocked
  /// runs should use "1 fs" so physical time is exact.
  std::string timescale = "1 ns";
  /// Name of the enclosing scope.
  std::string scope = "ctrtl";
};

/// Writes a recorded trace as a VCD file for waveform viewers (GTKWave
/// etc.). Signal values map as follows:
///   - integers       -> 64-bit binary vectors
///   - "DISC"         -> all-z (high impedance — a disconnected source!)
///   - "ILLEGAL"      -> all-x (unknown — a resource conflict!)
///   - anything else  -> string value changes
/// The time axis is `fs + delta` (for clock-free runs fs is 0, so each
/// delta cycle is one tick; for clocked runs deltas vanish inside the
/// femtosecond scale).
void write_vcd(std::ostream& out, const std::vector<TraceEvent>& events,
               const VcdOptions& options = {});

/// Convenience: renders to a string.
[[nodiscard]] std::string to_vcd(const std::vector<TraceEvent>& events,
                                 const VcdOptions& options = {});

}  // namespace ctrtl::verify
