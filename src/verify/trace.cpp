#include "verify/trace.h"

#include <sstream>

namespace ctrtl::verify {

TraceRecorder::TraceRecorder(kernel::Scheduler& scheduler) : scheduler_(scheduler) {
  observer_id_ = scheduler_.add_event_observer(
      [this](const kernel::SignalBase& signal, kernel::SimTime time) {
        events_.push_back(TraceEvent{time, signal.name(), signal.debug_value()});
      });
}

TraceRecorder::~TraceRecorder() {
  scheduler_.remove_event_observer(observer_id_);
}

std::vector<TraceEvent> TraceRecorder::events_for(const std::string& signal) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.signal == signal) {
      out.push_back(event);
    }
  }
  return out;
}

std::string TraceRecorder::to_text() const {
  std::ostringstream out;
  for (const TraceEvent& event : events_) {
    out << kernel::to_string(event.time) << "  " << event.signal << " = "
        << event.value << '\n';
  }
  return out.str();
}

std::string to_string(const RegisterWrite& write) {
  std::ostringstream out;
  out << "step " << write.step << ": " << write.reg << " := "
      << rtl::to_string(write.value);
  return out.str();
}

RegisterWriteTrace::RegisterWriteTrace(rtl::RtModel& model) : model_(model) {
  // Register output ports only ever change one delta after a cr latch
  // (delta 6s + 1 records the write committed in step s; s == 0 is the
  // preload during initialization).
  std::map<const kernel::SignalBase*, std::string> outs;
  for (const auto& reg : model.registers()) {
    outs[&reg->out()] = reg->name();
  }
  observer_id_ = model_.scheduler().add_event_observer(
      [this, outs = std::move(outs)](const kernel::SignalBase& signal,
                                     kernel::SimTime time) {
        const auto it = outs.find(&signal);
        if (it == outs.end()) {
          return;
        }
        const auto* out_signal = static_cast<const rtl::RtSignal*>(&signal);
        const std::uint64_t delta = time.delta;
        const unsigned step =
            delta == 0 ? 0u
                       : static_cast<unsigned>((delta - 1) / rtl::kPhasesPerStep);
        writes_.push_back(RegisterWrite{step, it->second, out_signal->read()});
      });
}

RegisterWriteTrace::~RegisterWriteTrace() {
  model_.scheduler().remove_event_observer(observer_id_);
}

}  // namespace ctrtl::verify
