#include "verify/equivalence.h"

#include <algorithm>
#include <sstream>

#include "transfer/build.h"

namespace ctrtl::verify {

std::string CheckReport::to_text() const {
  std::ostringstream out;
  for (const std::string& mismatch : mismatches) {
    out << mismatch << '\n';
  }
  return out.str();
}

CheckReport check_consistency(const transfer::Design& design,
                              const std::map<std::string, std::int64_t>& inputs) {
  CheckReport report;

  // Side 1: the dedicated formal semantics.
  const EvalResult reference = evaluate(design, inputs);

  // Side 2: VHDL-style event simulation.
  const auto model = transfer::build_model(design);
  for (const auto& [name, value] : inputs) {
    model->set_input(name, rtl::RtValue::of(value));
  }
  const rtl::RunResult simulated = model->run();

  // Delta-cycle cost (plus at most one trailing delta for the final
  // register-output update, which performs no phase work).
  if (simulated.stats.delta_cycles != reference.expected_delta_cycles &&
      simulated.stats.delta_cycles != reference.expected_delta_cycles + 1) {
    std::ostringstream out;
    out << "delta cycles: simulated " << simulated.stats.delta_cycles
        << ", semantics requires " << reference.expected_delta_cycles
        << " (cs_max * 6)";
    report.mismatches.push_back(out.str());
  }

  // Register values.
  for (const auto& [name, expected] : reference.registers) {
    const rtl::Register* reg = model->find_register(name);
    if (reg == nullptr) {
      report.mismatches.push_back("register " + name + " missing in model");
      continue;
    }
    if (reg->value() != expected) {
      report.mismatches.push_back("register " + name + ": semantics " +
                                  rtl::to_string(expected) + ", simulation " +
                                  rtl::to_string(reg->value()));
    }
  }

  // Conflicts (order-insensitive; the kernel's update order within a delta
  // is an implementation detail).
  auto expected_conflicts = reference.conflicts;
  auto actual_conflicts = simulated.conflicts;
  const auto conflict_key = [](const rtl::Conflict& c) {
    return std::tuple(c.step, c.phase, c.signal);
  };
  const auto by_key = [&](const rtl::Conflict& a, const rtl::Conflict& b) {
    return conflict_key(a) < conflict_key(b);
  };
  std::sort(expected_conflicts.begin(), expected_conflicts.end(), by_key);
  std::sort(actual_conflicts.begin(), actual_conflicts.end(), by_key);
  if (expected_conflicts != actual_conflicts) {
    std::ostringstream out;
    out << "conflict sets differ; semantics {";
    for (const rtl::Conflict& c : expected_conflicts) {
      out << " [" << rtl::to_string(c) << "]";
    }
    out << " } simulation {";
    for (const rtl::Conflict& c : actual_conflicts) {
      out << " [" << rtl::to_string(c) << "]";
    }
    out << " }";
    report.mismatches.push_back(out.str());
  }
  return report;
}

CheckReport compare_write_traces(const std::vector<RegisterWrite>& expected,
                                 const std::vector<RegisterWrite>& actual,
                                 bool ignore_preload) {
  const auto filter = [&](const std::vector<RegisterWrite>& writes) {
    std::vector<RegisterWrite> out;
    for (const RegisterWrite& write : writes) {
      if (!ignore_preload || write.step != 0) {
        out.push_back(write);
      }
    }
    return out;
  };
  const std::vector<RegisterWrite> lhs = filter(expected);
  const std::vector<RegisterWrite> rhs = filter(actual);

  CheckReport report;
  const std::size_t common = std::min(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (lhs[i] != rhs[i]) {
      report.mismatches.push_back("write " + std::to_string(i) + ": expected [" +
                                  to_string(lhs[i]) + "], actual [" +
                                  to_string(rhs[i]) + "]");
    }
  }
  if (lhs.size() != rhs.size()) {
    report.mismatches.push_back(
        "write counts differ: expected " + std::to_string(lhs.size()) +
        ", actual " + std::to_string(rhs.size()));
  }
  return report;
}

}  // namespace ctrtl::verify
