#include "verify/equivalence.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <tuple>

#include "rtl/lane_engine.h"
#include "transfer/build.h"
#include "transfer/schedule.h"

namespace ctrtl::verify {

std::string CheckReport::to_text() const {
  std::ostringstream out;
  for (const std::string& mismatch : mismatches) {
    out << mismatch << '\n';
  }
  return out.str();
}

CheckReport check_consistency(const transfer::Design& design,
                              const std::map<std::string, std::int64_t>& inputs) {
  CheckReport report;

  // Side 1: the dedicated formal semantics.
  const EvalResult reference = evaluate(design, inputs);

  // Side 2: VHDL-style event simulation.
  const auto model = transfer::build_model(design);
  for (const auto& [name, value] : inputs) {
    model->set_input(name, rtl::RtValue::of(value));
  }
  const rtl::RunResult simulated = model->run();

  // Delta-cycle cost (plus at most one trailing delta for the final
  // register-output update, which performs no phase work).
  if (simulated.stats.delta_cycles != reference.expected_delta_cycles &&
      simulated.stats.delta_cycles != reference.expected_delta_cycles + 1) {
    std::ostringstream out;
    out << "delta cycles: simulated " << simulated.stats.delta_cycles
        << ", semantics requires " << reference.expected_delta_cycles
        << " (cs_max * 6)";
    report.mismatches.push_back(out.str());
  }

  // Register values.
  for (const auto& [name, expected] : reference.registers) {
    const rtl::Register* reg = model->find_register(name);
    if (reg == nullptr) {
      report.mismatches.push_back("register " + name + " missing in model");
      continue;
    }
    if (reg->value() != expected) {
      report.mismatches.push_back("register " + name + ": semantics " +
                                  rtl::to_string(expected) + ", simulation " +
                                  rtl::to_string(reg->value()));
    }
  }

  // Conflicts (order-insensitive; the kernel's update order within a delta
  // is an implementation detail).
  auto expected_conflicts = reference.conflicts;
  auto actual_conflicts = simulated.conflicts;
  const auto conflict_key = [](const rtl::Conflict& c) {
    return std::tuple(c.step, c.phase, c.signal);
  };
  const auto by_key = [&](const rtl::Conflict& a, const rtl::Conflict& b) {
    return conflict_key(a) < conflict_key(b);
  };
  std::sort(expected_conflicts.begin(), expected_conflicts.end(), by_key);
  std::sort(actual_conflicts.begin(), actual_conflicts.end(), by_key);
  if (expected_conflicts != actual_conflicts) {
    std::ostringstream out;
    out << "conflict sets differ; semantics {";
    for (const rtl::Conflict& c : expected_conflicts) {
      out << " [" << rtl::to_string(c) << "]";
    }
    out << " } simulation {";
    for (const rtl::Conflict& c : actual_conflicts) {
      out << " [" << rtl::to_string(c) << "]";
    }
    out << " }";
    report.mismatches.push_back(out.str());
  }
  return report;
}

namespace {

/// Shared body of the clean and fault-sweep engine-equivalence checks:
/// `build` elaborates one side in the requested mode, `compiled` is the
/// pre-lowered design the lane engine executes. The clean check passes the
/// design straight through; the fault check routes both through the fault
/// facade so every engine consumes the identical transformed stream.
CheckReport check_engine_equivalence_impl(
    const std::vector<transfer::RegisterDecl>& registers,
    const std::map<std::string, std::int64_t>& inputs,
    const std::function<std::unique_ptr<rtl::RtModel>(rtl::TransferMode)>& build,
    std::shared_ptr<const transfer::CompiledDesign> compiled) {
  CheckReport report;

  // The trace must be declared after the model: its destructor unregisters
  // from the model's scheduler, so it has to die first (a tuple would
  // destroy the model head-first and leave the recorder unregistering from
  // a freed scheduler — caught by the TSan CI job).
  struct EngineRun {
    std::unique_ptr<rtl::RtModel> model;
    std::unique_ptr<TraceRecorder> trace;
    rtl::RunResult result;
  };
  const auto run_with = [&](rtl::TransferMode mode) {
    EngineRun run;
    run.model = build(mode);
    for (const auto& [name, value] : inputs) {
      run.model->set_input(name, rtl::RtValue::of(value));
    }
    run.trace = std::make_unique<TraceRecorder>(run.model->scheduler());
    run.result = run.model->run();
    return run;
  };
  const auto [event_model, event_trace, event_result] =
      run_with(rtl::TransferMode::kProcessPerTransfer);
  const auto [compiled_model, compiled_trace, compiled_result] =
      run_with(rtl::TransferMode::kCompiled);

  for (const transfer::RegisterDecl& decl : registers) {
    const rtl::Register* event_reg = event_model->find_register(decl.name);
    const rtl::Register* compiled_reg = compiled_model->find_register(decl.name);
    if (event_reg->value() != compiled_reg->value()) {
      report.mismatches.push_back(
          "register " + decl.name + ": event engine " +
          rtl::to_string(event_reg->value()) + ", compiled engine " +
          rtl::to_string(compiled_reg->value()));
    }
  }

  // Conflicts must agree *in order*: both engines record a conflict the
  // delta cycle the ILLEGAL value becomes visible.
  if (event_result.conflicts != compiled_result.conflicts) {
    std::ostringstream out;
    out << "conflict records differ; event {";
    for (const rtl::Conflict& c : event_result.conflicts) {
      out << " [" << rtl::to_string(c) << "]";
    }
    out << " } compiled {";
    for (const rtl::Conflict& c : compiled_result.conflicts) {
      out << " [" << rtl::to_string(c) << "]";
    }
    out << " }";
    report.mismatches.push_back(out.str());
  }

  if (event_result.cycles != compiled_result.cycles) {
    report.mismatches.push_back(
        "cycles differ: event " + std::to_string(event_result.cycles) +
        ", compiled " + std::to_string(compiled_result.cycles));
  }
  const auto compare_counter = [&](const char* name, std::uint64_t event_count,
                                   std::uint64_t compiled_count) {
    if (event_count != compiled_count) {
      report.mismatches.push_back(std::string(name) + " differ: event " +
                                  std::to_string(event_count) + ", compiled " +
                                  std::to_string(compiled_count));
    }
  };
  compare_counter("delta_cycles", event_result.stats.delta_cycles,
                  compiled_result.stats.delta_cycles);
  compare_counter("events", event_result.stats.events,
                  compiled_result.stats.events);
  compare_counter("updates", event_result.stats.updates,
                  compiled_result.stats.updates);
  compare_counter("transactions", event_result.stats.transactions,
                  compiled_result.stats.transactions);

  if (event_trace->events() != compiled_trace->events()) {
    const auto& lhs = event_trace->events();
    const auto& rhs = compiled_trace->events();
    std::ostringstream out;
    out << "event traces differ (event " << lhs.size() << " events, compiled "
        << rhs.size() << ")";
    const std::size_t common = std::min(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (lhs[i] != rhs[i]) {
        out << "; first divergence at index " << i << ": event ["
            << kernel::to_string(lhs[i].time) << " " << lhs[i].signal << " = "
            << lhs[i].value << "], compiled ["
            << kernel::to_string(rhs[i].time) << " " << rhs[i].signal << " = "
            << rhs[i].value << "]";
        break;
      }
    }
    report.mismatches.push_back(out.str());
  }

  // Side 3: the lane engine — the same design lowered once into the shared
  // action table and executed as structure-of-arrays lanes. Its contract is
  // InstanceResult equality with the event kernel, so compare against the
  // event side both as a single-lane block and as an inner lane of a wider
  // block (the latter catches cross-lane indexing mistakes a lone lane
  // cannot expose).
  rtl::InstanceResult event_instance;
  event_instance.cycles = event_result.cycles;
  event_instance.stats = event_result.stats;
  event_instance.conflicts = event_result.conflicts;
  for (const auto& reg : event_model->registers()) {
    event_instance.registers.emplace_back(reg->name(), reg->value());
  }
  const rtl::BatchInputProvider provider = [&inputs](std::size_t) {
    std::vector<std::pair<std::string, rtl::RtValue>> pairs;
    pairs.reserve(inputs.size());
    for (const auto& [name, value] : inputs) {
      pairs.emplace_back(name, rtl::RtValue::of(value));
    }
    return pairs;
  };
  const rtl::LaneEngine lane_engine(std::move(compiled));
  const auto check_lane = [&](const rtl::InstanceResult& lane,
                              const std::string& label) {
    if (lane == event_instance) {
      return;
    }
    if (lane.registers != event_instance.registers) {
      std::ostringstream out;
      out << label << ": register values differ; event {";
      for (const auto& [name, value] : event_instance.registers) {
        out << " " << name << "=" << rtl::to_string(value);
      }
      out << " } lanes {";
      for (const auto& [name, value] : lane.registers) {
        out << " " << name << "=" << rtl::to_string(value);
      }
      out << " }";
      report.mismatches.push_back(out.str());
    }
    if (lane.conflicts != event_instance.conflicts) {
      std::ostringstream out;
      out << label << ": conflict records differ; event {";
      for (const rtl::Conflict& c : event_instance.conflicts) {
        out << " [" << rtl::to_string(c) << "]";
      }
      out << " } lanes {";
      for (const rtl::Conflict& c : lane.conflicts) {
        out << " [" << rtl::to_string(c) << "]";
      }
      out << " }";
      report.mismatches.push_back(out.str());
    }
    const auto lane_counter = [&](const char* name, std::uint64_t event_count,
                                  std::uint64_t lane_count) {
      if (event_count != lane_count) {
        report.mismatches.push_back(label + ": " + name + " differ: event " +
                                    std::to_string(event_count) + ", lanes " +
                                    std::to_string(lane_count));
      }
    };
    lane_counter("cycles", event_instance.cycles, lane.cycles);
    lane_counter("delta_cycles", event_instance.stats.delta_cycles,
                 lane.stats.delta_cycles);
    lane_counter("events", event_instance.stats.events, lane.stats.events);
    lane_counter("updates", event_instance.stats.updates, lane.stats.updates);
    lane_counter("transactions", event_instance.stats.transactions,
                 lane.stats.transactions);
  };
  check_lane(lane_engine.run_block(0, 1, provider)[0], "lane engine (1 lane)");
  check_lane(lane_engine.run_block(0, 3, provider)[1],
             "lane engine (lane 1 of 3)");
  return report;
}

}  // namespace

CheckReport check_engine_equivalence(
    const transfer::Design& design,
    const std::map<std::string, std::int64_t>& inputs) {
  return check_engine_equivalence_impl(
      design.registers, inputs,
      [&design](rtl::TransferMode mode) {
        return transfer::build_model(design, mode);
      },
      transfer::CompiledDesign::compile(design));
}

CheckReport check_engine_equivalence(
    const fault::FaultedDesign& faulted,
    const std::map<std::string, std::int64_t>& inputs) {
  return check_engine_equivalence_impl(
      faulted.design.registers, inputs,
      [&faulted](rtl::TransferMode mode) {
        return fault::build_model(faulted, mode);
      },
      fault::compile(faulted));
}

CheckReport compare_write_traces(const std::vector<RegisterWrite>& expected,
                                 const std::vector<RegisterWrite>& actual,
                                 bool ignore_preload) {
  const auto filter = [&](const std::vector<RegisterWrite>& writes) {
    std::vector<RegisterWrite> out;
    for (const RegisterWrite& write : writes) {
      if (!ignore_preload || write.step != 0) {
        out.push_back(write);
      }
    }
    return out;
  };
  const std::vector<RegisterWrite> lhs = filter(expected);
  const std::vector<RegisterWrite> rhs = filter(actual);

  CheckReport report;
  const std::size_t common = std::min(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (lhs[i] != rhs[i]) {
      report.mismatches.push_back("write " + std::to_string(i) + ": expected [" +
                                  to_string(lhs[i]) + "], actual [" +
                                  to_string(rhs[i]) + "]");
    }
  }
  if (lhs.size() != rhs.size()) {
    report.mismatches.push_back(
        "write counts differ: expected " + std::to_string(lhs.size()) +
        ", actual " + std::to_string(rhs.size()));
  }
  return report;
}

}  // namespace ctrtl::verify
