#pragma once

#include <cstdint>

#include "transfer/design.h"

namespace ctrtl::verify {

/// Knobs for the randomized register-transfer design generator used by the
/// property tests and the scaling benchmarks.
struct RandomDesignOptions {
  std::uint32_t seed = 1;
  unsigned num_registers = 6;  // >= 3
  unsigned num_buses = 4;      // >= 3
  unsigned num_transfers = 8;
  /// Also schedule ALU tuples with random op codes.
  bool use_alu = false;
  /// Inject multi-drive conflicts: some transfers share a (step, bus) pair.
  bool inject_conflicts = false;
  /// Restrict to add/mul so every payload stays a natural number — required
  /// when the design must round-trip through the paper's in-band Integer
  /// encoding (DISC = -1, ILLEGAL = -2 collide with negative payloads).
  bool naturals_only = false;
};

/// Generates a valid `Design`. Without `inject_conflicts` the schedule is
/// serialized (each tuple gets a fresh step window) and all operand sources
/// carry values, so the design simulates conflict-free; with it, randomly
/// chosen tuples double-book a bus and must produce ILLEGAL at a
/// predictable (step, phase).
///
/// Multiplications draw operands only from the two read-only seed
/// registers, keeping payloads far from int64 overflow no matter how many
/// transfers are generated.
[[nodiscard]] transfer::Design random_design(const RandomDesignOptions& options);

}  // namespace ctrtl::verify
