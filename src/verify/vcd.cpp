#include "verify/vcd.h"

#include <bitset>
#include <charconv>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

namespace ctrtl::verify {

namespace {

/// Short printable identifier for the n-th signal (VCD id-char alphabet).
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

std::optional<std::int64_t> parse_int(const std::string& text) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc() && ptr == text.data() + text.size()) {
    return value;
  }
  return std::nullopt;
}

std::string binary64(std::int64_t value) {
  return std::bitset<64>(static_cast<std::uint64_t>(value)).to_string();
}

}  // namespace

void write_vcd(std::ostream& out, const std::vector<TraceEvent>& events,
               const VcdOptions& options) {
  // Collect signals in first-appearance order.
  std::map<std::string, std::string> ids;
  std::vector<std::string> order;
  for (const TraceEvent& event : events) {
    if (!ids.contains(event.signal)) {
      ids[event.signal] = vcd_id(ids.size());
      order.push_back(event.signal);
    }
  }

  out << "$date ctrtl trace $end\n";
  out << "$version ctrtl clock-free RT simulator $end\n";
  out << "$timescale " << options.timescale << " $end\n";
  out << "$scope module " << options.scope << " $end\n";
  for (const std::string& name : order) {
    // Dots are hierarchy separators for viewers; flatten them.
    std::string flat = name;
    for (char& c : flat) {
      if (c == '.' || c == ' ') {
        c = '_';
      }
    }
    out << "$var wire 64 " << ids[name] << " " << flat << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  std::uint64_t last_time = ~std::uint64_t{0};
  for (const TraceEvent& event : events) {
    const std::uint64_t time = event.time.fs + event.time.delta;
    if (time != last_time) {
      out << '#' << time << '\n';
      last_time = time;
    }
    const std::string& id = ids[event.signal];
    if (event.value == "DISC") {
      out << "bz " << id << '\n';
    } else if (event.value == "ILLEGAL") {
      out << "bx " << id << '\n';
    } else if (const auto number = parse_int(event.value)) {
      out << 'b' << binary64(*number) << ' ' << id << '\n';
    } else {
      out << 's' << event.value << ' ' << id << '\n';
    }
  }
}

std::string to_vcd(const std::vector<TraceEvent>& events,
                   const VcdOptions& options) {
  std::ostringstream out;
  write_vcd(out, events, options);
  return out.str();
}

}  // namespace ctrtl::verify
