#include "verify/oracle_check.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "transfer/build.h"
#include "transfer/mapping.h"
#include "verify/semantics.h"

namespace ctrtl::verify {

std::string to_string(const DiscSite& site) {
  std::ostringstream out;
  out << "DISC on " << site.signal << " at step " << site.step << ", phase "
      << rtl::phase_name(site.visible_phase);
  return out.str();
}

namespace {

std::vector<rtl::Conflict> sorted_conflicts(std::vector<rtl::Conflict> conflicts) {
  std::sort(conflicts.begin(), conflicts.end(),
            [](const rtl::Conflict& a, const rtl::Conflict& b) {
              return std::tuple(a.step, a.phase, a.signal) <
                     std::tuple(b.step, b.phase, b.signal);
            });
  return conflicts;
}

const char* kind_name(rtl::RtValue::Kind kind) {
  switch (kind) {
    case rtl::RtValue::Kind::kDisc:
      return "DISC";
    case rtl::RtValue::Kind::kIllegal:
      return "ILLEGAL";
    case rtl::RtValue::Kind::kValue:
      return "value";
  }
  return "<corrupt>";
}

/// Reports the symmetric difference of two sorted record sets as
/// false-negative ("observed, not predicted") and false-positive
/// ("predicted, not observed") mismatch lines.
template <typename Record>
void diff_sets(const std::vector<Record>& observed,
               const std::vector<Record>& predicted, const char* what,
               CheckReport& report) {
  std::vector<Record> missed;
  std::set_difference(observed.begin(), observed.end(), predicted.begin(),
                      predicted.end(), std::back_inserter(missed));
  std::vector<Record> phantom;
  std::set_difference(predicted.begin(), predicted.end(), observed.begin(),
                      observed.end(), std::back_inserter(phantom));
  for (const Record& record : missed) {
    report.mismatches.push_back(std::string("oracle false negative: ") + what +
                                " [" + to_string(record) + "] observed but not "
                                "predicted");
  }
  for (const Record& record : phantom) {
    report.mismatches.push_back(std::string("oracle false positive: ") + what +
                                " [" + to_string(record) + "] predicted but "
                                "not observed");
  }
}

CheckReport check_prediction_impl(
    const transfer::Design& design,
    std::span<const transfer::TransInstance> instances,
    const OutcomePrediction& prediction,
    const std::map<std::string, std::int64_t>& inputs,
    std::unique_ptr<rtl::RtModel> model) {
  CheckReport report;

  // Side 1: the event kernel over the identical stream.
  for (const auto& [name, value] : inputs) {
    model->set_input(name, rtl::RtValue::of(value));
  }
  const rtl::RunResult simulated = model->run();

  // Side 2: the reference transition semantics, streaming every driven-sink
  // resolution so DISC outcomes are observable (the kernel's conflict
  // monitor only records ILLEGAL transitions).
  std::vector<DiscSite> observed_disc;
  const EvalResult reference = evaluate(
      design, instances, inputs, [&](const Resolution& resolution) {
        if (resolution.value.is_disc()) {
          observed_disc.push_back(DiscSite{resolution.sink, resolution.step,
                                           resolution.visible_phase});
        }
      });

  // Conflicts: prediction vs simulation, exact as a set.
  const std::vector<rtl::Conflict> simulated_conflicts =
      sorted_conflicts(simulated.conflicts);
  const std::vector<rtl::Conflict> predicted_conflicts =
      sorted_conflicts(prediction.conflicts);
  const auto conflict_less = [](const rtl::Conflict& a, const rtl::Conflict& b) {
    return std::tuple(a.step, a.phase, a.signal) <
           std::tuple(b.step, b.phase, b.signal);
  };
  std::vector<rtl::Conflict> missed;
  std::set_difference(simulated_conflicts.begin(), simulated_conflicts.end(),
                      predicted_conflicts.begin(), predicted_conflicts.end(),
                      std::back_inserter(missed), conflict_less);
  std::vector<rtl::Conflict> phantom;
  std::set_difference(predicted_conflicts.begin(), predicted_conflicts.end(),
                      simulated_conflicts.begin(), simulated_conflicts.end(),
                      std::back_inserter(phantom), conflict_less);
  for (const rtl::Conflict& conflict : missed) {
    report.mismatches.push_back("oracle false negative: [" +
                                to_string(conflict) +
                                "] observed but not predicted");
  }
  for (const rtl::Conflict& conflict : phantom) {
    report.mismatches.push_back("oracle false positive: [" +
                                to_string(conflict) +
                                "] predicted but not observed");
  }

  // Cross-check: reference semantics vs event kernel on the same stream.
  if (sorted_conflicts(reference.conflicts) != simulated_conflicts) {
    report.mismatches.push_back(
        "reference semantics and event kernel disagree on the conflict set "
        "for this stream — the prediction comparison is unanchored");
  }

  // DISC sites: prediction vs reference semantics, exact as a set.
  std::sort(observed_disc.begin(), observed_disc.end());
  std::vector<DiscSite> predicted_disc = prediction.disc_sites;
  std::sort(predicted_disc.begin(), predicted_disc.end());
  diff_sets(observed_disc, predicted_disc, "disc", report);

  // Final register classification vs the simulated values.
  for (const transfer::RegisterDecl& decl : design.registers) {
    const auto it = prediction.registers.find(decl.name);
    if (it == prediction.registers.end()) {
      report.mismatches.push_back("oracle predicts nothing for register " +
                                  decl.name);
      continue;
    }
    const rtl::Register* reg = model->find_register(decl.name);
    if (reg->value().kind() != it->second) {
      report.mismatches.push_back(
          "register " + decl.name + ": oracle predicts " +
          kind_name(it->second) + ", simulation ended with " +
          to_string(reg->value()));
    }
  }
  return report;
}

}  // namespace

CheckReport check_prediction(const transfer::Design& design,
                             std::span<const transfer::TransInstance> instances,
                             const OutcomePrediction& prediction,
                             const std::map<std::string, std::int64_t>& inputs) {
  return check_prediction_impl(design, instances, prediction, inputs,
                               transfer::build_model(design, instances));
}

CheckReport check_prediction(const transfer::Design& design,
                             const OutcomePrediction& prediction,
                             const std::map<std::string, std::int64_t>& inputs) {
  const std::vector<transfer::TransInstance> instances =
      transfer::to_instances(design.transfers);
  return check_prediction_impl(design, instances, prediction, inputs,
                               transfer::build_model(design));
}

CheckReport check_prediction(const fault::FaultedDesign& faulted,
                             const OutcomePrediction& prediction,
                             const std::map<std::string, std::int64_t>& inputs) {
  return check_prediction_impl(faulted.design, faulted.instances, prediction,
                               inputs, fault::build_model(faulted));
}

}  // namespace ctrtl::verify
