#pragma once

#include <cstdint>
#include <string>

namespace ctrtl::common {

/// A position inside a source text (used by the VHDL front end and by
/// diagnostics that refer back to model construction sites).
///
/// Lines and columns are 1-based; a default-constructed location is the
/// "unknown" location and formats as "<unknown>".
struct SourceLocation {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool is_known() const { return line != 0; }

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Renders "line:column" or "<unknown>".
std::string to_string(const SourceLocation& loc);

}  // namespace ctrtl::common
