#include "common/fixed_point.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ctrtl::common {

Fixed Fixed::from_double(double value) {
  return from_raw(static_cast<std::int64_t>(std::llround(value * kOne)));
}

double Fixed::to_double() const {
  return static_cast<double>(raw_) / static_cast<double>(kOne);
}

Fixed operator*(Fixed a, Fixed b) {
  // 64x64 -> 128-bit product, then rescale rounding to nearest (half up):
  // floor((p + half) / 2^frac) — the arithmetic shift floors for both signs.
  const __int128 product = static_cast<__int128>(a.raw_) * b.raw_;
  const __int128 half = __int128{1} << (Fixed::kFracBits - 1);
  return Fixed::from_raw(
      static_cast<std::int64_t>((product + half) >> Fixed::kFracBits));
}

Fixed operator/(Fixed a, Fixed b) {
  if (b.raw_ == 0) {
    throw std::domain_error("Fixed: division by zero");
  }
  const __int128 scaled = static_cast<__int128>(a.raw_) << Fixed::kFracBits;
  return Fixed::from_raw(static_cast<std::int64_t>(scaled / b.raw_));
}

std::string to_string(Fixed value) {
  const double v = value.to_double();
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(4);
  out << v;
  return out.str();
}

std::int64_t abs_error_lsb(Fixed a, Fixed b) {
  return std::llabs(a.raw() - b.raw());
}

}  // namespace ctrtl::common
