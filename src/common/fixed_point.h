#pragma once

#include <cstdint>
#include <string>

namespace ctrtl::common {

/// Signed fixed-point value in Q(31-FRAC_BITS).FRAC_BITS format, stored in a
/// 64-bit accumulator so that multiply/accumulate chains (the IKS MACC
/// resource) do not overflow for the magnitudes used by the inverse
/// kinematics computation.
///
/// The IKS chip of Leung & Shanblatt operates on fractional fixed-point
/// data; we use Q16.16 which comfortably covers joint angles (radians) and
/// normalized link lengths while keeping the CORDIC gain arithmetic exact
/// enough for trace-level comparisons (see `iks::golden`).
class Fixed {
 public:
  static constexpr int kFracBits = 16;
  static constexpr std::int64_t kOne = std::int64_t{1} << kFracBits;

  constexpr Fixed() = default;

  /// Wraps an already-scaled raw value.
  [[nodiscard]] static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  [[nodiscard]] static constexpr Fixed from_int(std::int64_t value) {
    return from_raw(value << kFracBits);
  }

  [[nodiscard]] static Fixed from_double(double value);

  [[nodiscard]] constexpr std::int64_t raw() const { return raw_; }
  [[nodiscard]] double to_double() const;

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a) { return from_raw(-a.raw_); }

  /// Rounding fixed-point multiply.
  friend Fixed operator*(Fixed a, Fixed b);

  /// Fixed-point divide; the divisor must be non-zero.
  friend Fixed operator/(Fixed a, Fixed b);

  /// Arithmetic shift right (used by the CORDIC iterations and by the IKS
  /// X-ADD `Rshift` micro-operation).
  [[nodiscard]] constexpr Fixed asr(int amount) const {
    return from_raw(raw_ >> amount);
  }

  friend constexpr bool operator==(Fixed, Fixed) = default;
  friend constexpr auto operator<=>(Fixed a, Fixed b) { return a.raw_ <=> b.raw_; }

 private:
  std::int64_t raw_ = 0;
};

/// Decimal rendering with 4 fractional digits, e.g. "-1.2500".
std::string to_string(Fixed value);

/// Absolute difference in raw LSBs; used by golden-model comparisons.
std::int64_t abs_error_lsb(Fixed a, Fixed b);

}  // namespace ctrtl::common
