#include "common/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace ctrtl::common {

std::string to_string(const SourceLocation& loc) {
  if (!loc.is_known()) {
    return "<unknown>";
  }
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

namespace {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

}  // namespace

std::string to_string(const Diagnostic& diag) {
  std::ostringstream out;
  out << severity_name(diag.severity) << ": " << diag.message;
  if (diag.location.is_known()) {
    out << " at " << to_string(diag.location);
  }
  return out.str();
}

void DiagnosticBag::note(std::string message, SourceLocation loc) {
  entries_.push_back({Severity::kNote, std::move(message), loc});
}

void DiagnosticBag::warning(std::string message, SourceLocation loc) {
  entries_.push_back({Severity::kWarning, std::move(message), loc});
}

void DiagnosticBag::error(std::string message, SourceLocation loc) {
  entries_.push_back({Severity::kError, std::move(message), loc});
}

bool DiagnosticBag::has_errors() const {
  return error_count() > 0;
}

std::size_t DiagnosticBag::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

std::string DiagnosticBag::to_text() const {
  std::ostringstream out;
  for (const Diagnostic& diag : entries_) {
    out << to_string(diag) << '\n';
  }
  return out.str();
}

}  // namespace ctrtl::common
