#pragma once

#include <string>
#include <vector>

#include "common/source_location.h"

namespace ctrtl::common {

/// Severity of a reported diagnostic.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// One diagnostic message, optionally anchored to a source location.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  SourceLocation location;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Renders "error: message at 3:7" style text.
std::string to_string(const Diagnostic& diag);

/// Accumulates diagnostics produced by a pass (subset check, elaboration,
/// conflict analysis, ...). Passes report into a bag instead of throwing so
/// that a caller sees *all* problems of a model at once.
class DiagnosticBag {
 public:
  void note(std::string message, SourceLocation loc = {});
  void warning(std::string message, SourceLocation loc = {});
  void error(std::string message, SourceLocation loc = {});

  [[nodiscard]] bool has_errors() const;
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] const std::vector<Diagnostic>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// All diagnostics, one per line.
  [[nodiscard]] std::string to_text() const;

  void clear() { entries_.clear(); }

 private:
  std::vector<Diagnostic> entries_;
};

}  // namespace ctrtl::common
