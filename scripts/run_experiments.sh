#!/usr/bin/env bash
# Regenerates every experiment: full test suite + all benchmark binaries.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "=== tests ==="
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee test_output.txt

echo "=== examples ==="
for e in "$BUILD"/examples/*; do
  if [ -x "$e" ] && [ -f "$e" ]; then
    echo "--- $(basename "$e") ---"
    "$e"
  fi
done 2>&1 | tee example_output.txt

echo "=== benchmarks ==="
for b in "$BUILD"/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "### $(basename "$b")"
    "$b"
  fi
done 2>&1 | tee bench_output.txt

echo "=== bench smoke (JSON harness) ==="
"$(dirname "$0")/bench_smoke.sh" "$BUILD"
