#!/usr/bin/env bash
# Regenerates every experiment: full test suite + all benchmark binaries.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "=== tests ==="
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee test_output.txt

echo "=== examples ==="
for e in "$BUILD"/examples/*; do
  if [ -x "$e" ] && [ -f "$e" ]; then
    echo "--- $(basename "$e") ---"
    "$e"
  fi
done 2>&1 | tee example_output.txt

echo "=== benchmarks ==="
for b in "$BUILD"/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "### $(basename "$b")"
    "$b"
  fi
done 2>&1 | tee bench_output.txt

echo "=== fault-sweep smoke ==="
# Guarded-execution spot checks on the shipped example design: an injected
# bus contention must exit 3 with a conflict record, and an armed watchdog
# must exit 4 with the structured trip diagnostic (see docs/ROBUSTNESS.md).
# The full 30-design x 5-kind differential sweep runs under ctest above
# (fault_sweep_test).
{
  "$BUILD"/tools/ctrtl_design examples/rtd/fig1.rtd --simulate \
    --fault-plan=examples/faults/fig1_force.fp && exit_code=0 || exit_code=$?
  [ "$exit_code" -eq 3 ] || { echo "fault-plan smoke: expected exit 3, got $exit_code"; exit 1; }
  "$BUILD"/tools/ctrtl_design examples/rtd/fig1.rtd --simulate \
    --max-delta-cycles=10 && exit_code=0 || exit_code=$?
  [ "$exit_code" -eq 4 ] || { echo "watchdog smoke: expected exit 4, got $exit_code"; exit 1; }
  echo "fault-sweep smoke: ok"
} 2>&1 | tee fault_smoke_output.txt

echo "=== generator corpus smoke (PR gate) ==="
# 25 mixed-profile seeds through the conflict oracle, the 3-way engine
# equivalence check, and the standard fault plans on every 5th case. The
# nightly CI job runs the same sweep at 500 seeds (see E13 in
# EXPERIMENTS.md); a failing case prints its reproducing --seed.
"$BUILD"/tools/ctrtl_gen --seed=1 --count=25 --profile=mixed \
  --verify --fault-sweep=5 2>&1 | tee corpus_smoke_output.txt

echo "=== service smoke (ctrtl_serve e2e, E14 correctness half) ==="
# Real server on a Unix socket: cold and warm submissions diffed
# byte-for-byte against ctrtl_design --simulate, the cache-hit counter
# proving the warm job skipped lowering, fault-plan / watchdog / garbage
# jobs as structured results, clean SHUTDOWN. The E14 saturation protocol
# (worker sweep, BUSY rates) is documented in EXPERIMENTS.md; the
# cold-vs-warm latency pair lands in BENCH_kernel.json via bench_to_json.
"$(dirname "$0")/serve_smoke.sh" "$BUILD"/tools/ctrtl_serve \
  "$BUILD"/tools/ctrtl_design . 2>&1 | tee serve_smoke_output.txt

echo "=== bench smoke (JSON harness) ==="
"$(dirname "$0")/bench_smoke.sh" "$BUILD"
