#!/usr/bin/env bash
# CI smoke for the kernel benchmark harness: runs bench_to_json --quick and
# validates the emitted JSON against the ctrtl-bench/1 schema (shape, required
# entries, positive numbers). Fails loudly if the harness or its output drifts.
#
# Usage: scripts/bench_smoke.sh [build-dir] [out.json]
set -euo pipefail
BUILD="${1:-build}"
OUT="${2:-${BUILD}/bench_smoke.json}"

TOOL="${BUILD}/tools/bench_to_json"
if [ ! -x "$TOOL" ]; then
  echo "bench_smoke: $TOOL not built (run cmake --build $BUILD first)" >&2
  exit 1
fi

"$TOOL" --quick --label smoke --out "$OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc.get("schema") == "ctrtl-bench/1", f"bad schema: {doc.get('schema')}"
assert doc["host"]["hardware_concurrency"] >= 1
entries = doc["entries"]
assert entries, "entries must be non-empty"

names = [e["name"] for e in entries]
assert "single_instance" in names, "missing single_instance entry"
batch_workers = {e["workers"] for e in entries if e["name"] == "batch"}
assert {1, 2, 4} <= batch_workers, f"missing batch worker configs: {batch_workers}"
assert "clockfree_process_per_transfer" in names and "clocked_rtl" in names, \
    "missing E6 clocked-vs-clock-free entries"

for e in entries:
    for key in ("name", "unit", "workers", "instances", "repetitions",
                "wall_ms", "steps", "throughput_steps_per_s"):
        assert key in e, f"entry {e.get('name')} missing {key}"
    assert e["wall_ms"] > 0, f"{e['name']}: wall_ms must be positive"
    assert e["steps"] > 0, f"{e['name']}: steps must be positive"
    assert e["throughput_steps_per_s"] > 0, f"{e['name']}: throughput must be positive"

print(f"bench_smoke: OK ({len(entries)} entries)")
EOF
else
  # Minimal fallback validation without python3.
  grep -q '"schema": "ctrtl-bench/1"' "$OUT"
  grep -q '"name": "single_instance"' "$OUT"
  grep -q '"name": "batch"' "$OUT"
  grep -q '"name": "clocked_rtl"' "$OUT"
  echo "bench_smoke: OK (grep fallback)"
fi
