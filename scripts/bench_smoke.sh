#!/usr/bin/env bash
# CI smoke for the kernel benchmark harness: runs bench_to_json --quick and
# validates the emitted JSON against the ctrtl-bench/1 schema (shape, required
# entries, positive numbers). Fails loudly if the harness or its output drifts.
#
# Usage: scripts/bench_smoke.sh [--quick] [build-dir] [out.json]
#   --quick  explicit alias for the default behaviour (the smoke always runs
#            the harness's --quick workload); accepted so CI invocations read
#            naturally and stay stable if a full mode is ever added.
set -euo pipefail

POSITIONAL=()
for arg in "$@"; do
  case "$arg" in
    --quick) ;;  # the smoke is always quick; accept the flag explicitly
    --help|-h)
      echo "usage: scripts/bench_smoke.sh [--quick] [build-dir] [out.json]" >&2
      exit 0
      ;;
    -*)
      echo "bench_smoke: unknown option '$arg'" >&2
      exit 2
      ;;
    *) POSITIONAL+=("$arg") ;;
  esac
done
BUILD="${POSITIONAL[0]:-build}"
OUT="${POSITIONAL[1]:-${BUILD}/bench_smoke.json}"

TOOL="${BUILD}/tools/bench_to_json"
if [ ! -x "$TOOL" ]; then
  echo "bench_smoke: $TOOL not built (run cmake --build $BUILD first)" >&2
  exit 1
fi

"$TOOL" --quick --label smoke --out "$OUT"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc.get("schema") == "ctrtl-bench/1", f"bad schema: {doc.get('schema')}"
assert doc["host"]["hardware_concurrency"] >= 1
entries = doc["entries"]
assert entries, "entries must be non-empty"

names = [e["name"] for e in entries]
assert "single_instance" in names, "missing single_instance entry"
assert "single_instance_compiled" in names, \
    "missing single_instance_compiled entry (compiled-engine fast path)"
batch_workers = {e["workers"] for e in entries if e["name"] == "batch"}
assert {1, 2, 4} <= batch_workers, f"missing batch worker configs: {batch_workers}"
compiled_workers = {e["workers"] for e in entries if e["name"] == "batch_compiled"}
assert {1, 2, 4} <= compiled_workers, \
    f"missing batch_compiled worker configs: {compiled_workers}"
# PR 4 lane engine: the shared-design ablation pair must sweep the fixed
# worker set at both batch sizes.
lanes = [e for e in entries if e["name"] == "batch_lanes"]
shared = [e for e in entries if e["name"] == "batch_compiled_shared"]
assert lanes, "missing batch_lanes entries (lane engine)"
assert shared, "missing batch_compiled_shared entries (lane-ablation baseline)"
lane_workers = {e["workers"] for e in lanes}
assert {1, 2, 4, 8} <= lane_workers, \
    f"missing batch_lanes worker configs: {lane_workers}"
lane_sizes = {e["instances"] for e in lanes}
assert len(lane_sizes) >= 2, \
    f"batch_lanes must cover two batch sizes, got {lane_sizes}"
# Lane blocks and per-instance models execute the identical shared design,
# so at equal (workers, instances) the step counts must agree exactly.
shared_steps = {(e["workers"], e["instances"]): e["steps"] for e in shared}
for e in lanes:
    key = (e["workers"], e["instances"])
    assert shared_steps.get(key) == e["steps"], \
        f"batch_lanes{key} steps {e['steps']} != batch_compiled_shared " \
        f"{shared_steps.get(key)}"
assert "clockfree_process_per_transfer" in names and "clocked_rtl" in names, \
    "missing E6 clocked-vs-clock-free entries"
assert "clockfree_compiled" in names, "missing clockfree_compiled entry"
# PR 7 service entries (E14): both must exist and run the same workload, so
# their step counts agree; the warm entry carries the cold/warm ratio.
assert "service_cold" in names, "missing service_cold entry (cache-miss path)"
assert "service_warm" in names, "missing service_warm entry (cache-hit path)"
service_cold = next(e for e in entries if e["name"] == "service_cold")
service_warm = next(e for e in entries if e["name"] == "service_warm")
assert service_cold["steps"] == service_warm["steps"], \
    "service_cold and service_warm must measure identical workloads"
assert "speedup_vs_cold" in service_warm, \
    "service_warm missing speedup_vs_cold ratio"
# PR 10 load shedding (E15): the soft-limit entry floods a parked service
# with low-priority jobs; the shed count is deterministic by construction.
assert "service_shed" in names, "missing service_shed entry (load shedding)"
service_shed = next(e for e in entries if e["name"] == "service_shed")
assert "shed_jobs" in service_shed, "service_shed missing shed_jobs count"
assert service_shed["shed_jobs"] > 0, \
    f"service_shed must shed jobs, got {service_shed['shed_jobs']}"

for e in entries:
    for key in ("name", "unit", "workers", "instances", "repetitions",
                "wall_ms", "steps", "throughput_steps_per_s"):
        assert key in e, f"entry {e.get('name')} missing {key}"
    assert e["variant"] == "smoke", f"{e['name']}: variant field missing/wrong"
    assert e["wall_ms"] > 0, f"{e['name']}: wall_ms must be positive"
    assert e["steps"] > 0, f"{e['name']}: steps must be positive"
    assert e["throughput_steps_per_s"] > 0, f"{e['name']}: throughput must be positive"

# Both engines simulate the same seeded workload, so their step counts must
# agree exactly — a cheap cross-engine consistency check in CI.
by_name = {}
for e in entries:
    by_name.setdefault(e["name"], []).append(e)
ev = by_name["single_instance"][0]["steps"]
cp = by_name["single_instance_compiled"][0]["steps"]
assert ev == cp, f"engines disagree on steps: event {ev}, compiled {cp}"

print(f"bench_smoke: OK ({len(entries)} entries)")
EOF
else
  # Minimal fallback validation without python3.
  grep -q '"schema": "ctrtl-bench/1"' "$OUT"
  grep -q '"name": "single_instance"' "$OUT"
  grep -q '"name": "single_instance_compiled"' "$OUT"
  grep -q '"name": "batch"' "$OUT"
  grep -q '"name": "batch_compiled"' "$OUT"
  grep -q '"name": "batch_compiled_shared"' "$OUT"
  grep -q '"name": "batch_lanes"' "$OUT"
  grep -q '"name": "clockfree_compiled"' "$OUT"
  grep -q '"name": "clocked_rtl"' "$OUT"
  grep -q '"name": "service_cold"' "$OUT"
  grep -q '"name": "service_warm"' "$OUT"
  grep -q '"name": "service_shed"' "$OUT"
  grep -q '"shed_jobs"' "$OUT"
  echo "bench_smoke: OK (grep fallback)"
fi
