#!/usr/bin/env bash
# Chaos smoke for ctrtl_serve: drives the production-hardening features
# through the real binary and real failure modes — a SIGKILLed server must
# restart warm from its crash-safe snapshot, a truncated snapshot must
# degrade to a counted skip (never a dead boot), an expired deadline must
# come back as a structured E-DEADLINE, and the server must keep serving
# after every one of them. The in-process twin of these scenarios lives in
# tests/serve/chaos_test.cpp; this script proves the same contracts hold
# end-to-end. CI runs it as the service chaos job; ctest as
# tool_ctrtl_serve_chaos_smoke.
#
# Usage: scripts/chaos_smoke.sh [ctrtl_serve-bin] [repo-root]
set -euo pipefail

SERVE="${1:-build/tools/ctrtl_serve}"
ROOT="${2:-$(cd "$(dirname "$0")/.." && pwd)}"

if [ ! -x "$SERVE" ]; then
  echo "chaos_smoke: $SERVE not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SOCK="$WORK/ctrtl.sock"
SNAP="$WORK/cache.snap"
FIG1="$ROOT/examples/rtd/fig1.rtd"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "chaos_smoke: FAIL: $*" >&2
  exit 1
}

start_server() {
  # A SIGKILLed server leaves its socket file behind; clear it so the
  # readiness loop below waits for the NEW server's bind, not the corpse's.
  rm -f "$SOCK"
  "$SERVE" serve --socket="$SOCK" --workers=2 --queue=4 --cache=4 \
    --snapshot="$SNAP" > "$1" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.05
  done
  [ -S "$SOCK" ] || fail "server socket never appeared"
  "$SERVE" ping --socket="$SOCK" > /dev/null || fail "ping failed after start"
}

# 1. Cold server with persistence on: the first job is a miss, and its
#    sources are journaled to the snapshot as a side effect.
start_server "$WORK/server1.log"
"$SERVE" submit --socket="$SOCK" --job=cold "$FIG1" \
  > /dev/null 2> "$WORK/cold.log"
grep -q "cache miss" "$WORK/cold.log" || fail "first job should miss"
[ -s "$SNAP" ] || fail "snapshot file not written after a cache miss"

# 2. Crash: SIGKILL the server — no drain, no flush hooks, nothing. The
#    journal's append-time flush is the only durability it gets.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# 3. Restart: the snapshot replays (one record), and the same design now
#    hits the cache on the very first submission after the crash.
start_server "$WORK/server2.log"
"$SERVE" stats --socket="$SOCK" > "$WORK/stats1.txt"
grep -q "^snapshot-records-loaded 1$" "$WORK/stats1.txt" \
  || fail "restarted server should load 1 snapshot record"
grep -q "^snapshot-records-skipped 0$" "$WORK/stats1.txt" \
  || fail "clean snapshot should skip nothing"
"$SERVE" submit --socket="$SOCK" --job=warm "$FIG1" \
  > /dev/null 2> "$WORK/warm.log"
grep -q "cache hit" "$WORK/warm.log" \
  || fail "first job after kill -9 restart should hit the restored cache"

# 4. Deadline chaos: a big job with a 1 ms budget must come back as a
#    structured E-DEADLINE (exit 2) — whether it burned out queued or
#    mid-run — and the server must keep serving afterwards.
set +e
"$SERVE" submit --socket="$SOCK" --job=doomed --instances=8192 \
  --deadline-ms=1 "$FIG1" > /dev/null 2> "$WORK/deadline.log"
STATUS=$?
set -e
[ "$STATUS" -eq 2 ] || fail "deadline job expected exit 2, got $STATUS"
grep -q "E-DEADLINE" "$WORK/deadline.log" \
  || fail "expected E-DEADLINE error code"
"$SERVE" ping --socket="$SOCK" > /dev/null \
  || fail "server died after deadline job"
"$SERVE" stats --socket="$SOCK" | grep -q "^jobs-deadline-expired 1$" \
  || fail "deadline expiry not counted"

# 5. Clean shutdown of the healthy server before we maul its snapshot.
"$SERVE" shutdown --socket="$SOCK" > /dev/null || fail "shutdown failed"
wait "$SERVER_PID"
SERVER_PID=""

# 6. Snapshot corruption: tear the record's tail, as a crash mid-append
#    would. The next boot must come up serving with the damage counted,
#    never refuse to start.
SIZE=$(wc -c < "$SNAP")
TRUNCATED=$((SIZE - 5))
head -c "$TRUNCATED" "$SNAP" > "$SNAP.torn" && mv "$SNAP.torn" "$SNAP"
start_server "$WORK/server3.log"
"$SERVE" stats --socket="$SOCK" > "$WORK/stats2.txt"
grep -q "^snapshot-records-loaded 0$" "$WORK/stats2.txt" \
  || fail "torn record must not load"
grep -q "^snapshot-records-skipped 1$" "$WORK/stats2.txt" \
  || fail "torn record must be counted as skipped"
"$SERVE" submit --socket="$SOCK" --job=cold2 "$FIG1" \
  > /dev/null 2> "$WORK/cold2.log"
grep -q "cache miss" "$WORK/cold2.log" \
  || fail "after snapshot loss the cache should be cold, not wrong"

# 7. Clean exit: the survivor still shuts down with status 0.
"$SERVE" shutdown --socket="$SOCK" > /dev/null || fail "final shutdown failed"
wait "$SERVER_PID"
SERVER_STATUS=$?
SERVER_PID=""
[ "$SERVER_STATUS" -eq 0 ] || fail "server exited $SERVER_STATUS"
grep -q "ctrtl_serve: stopped" "$WORK/server3.log" \
  || fail "server did not log clean stop"

echo "chaos smoke: all checks passed"
