#!/usr/bin/env bash
# End-to-end smoke for ctrtl_serve: starts a server, proves the wire results
# are byte-identical to ctrtl_design, proves the content-hash cache works
# (second submission of the same sources is a hit), exercises a fault-plan
# job and a watchdog-tripping job, checks backpressure stats plumbing, and
# shuts the server down cleanly. CI runs this as the service smoke job; it
# is also wired into ctest as tool_ctrtl_serve_smoke.
#
# Usage: scripts/serve_smoke.sh [ctrtl_serve-bin] [ctrtl_design-bin] [repo-root]
set -euo pipefail

SERVE="${1:-build/tools/ctrtl_serve}"
DESIGN="${2:-build/tools/ctrtl_design}"
ROOT="${3:-$(cd "$(dirname "$0")/.." && pwd)}"

for bin in "$SERVE" "$DESIGN"; do
  if [ ! -x "$bin" ]; then
    echo "serve_smoke: $bin not built" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
SOCK="$WORK/ctrtl.sock"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  exit 1
}

"$SERVE" serve --socket="$SOCK" --workers=2 --queue=4 --cache=4 \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || fail "server socket never appeared"
"$SERVE" ping --socket="$SOCK" | grep -q "ok ctrtl-serve/2" \
  || fail "ping failed"

FIG1="$ROOT/examples/rtd/fig1.rtd"
PLAN="$ROOT/examples/faults/fig1_force.fp"

# 1. Byte-for-byte equivalence: the streamed wire reports must render to
#    exactly the result lines ctrtl_design prints for the same design. Only
#    conflict lines, register lines (both two-space indented), and the
#    "final register values:" header constitute the result; everything else
#    in ctrtl_design output is progress chatter.
"$DESIGN" "$FIG1" --simulate \
  | grep -E '^(  |final register values:)' > "$WORK/expected.txt"
"$SERVE" submit --socket="$SOCK" --job=clean "$FIG1" \
  > "$WORK/got.txt" 2> "$WORK/clean.log"
diff -u "$WORK/expected.txt" "$WORK/got.txt" \
  || fail "wire reports differ from ctrtl_design output"
grep -q "cache miss" "$WORK/clean.log" || fail "first job should miss"

# 2. Cache hit: identical sources, second submission must skip lowering.
"$SERVE" submit --socket="$SOCK" --job=warm "$FIG1" \
  > "$WORK/got2.txt" 2> "$WORK/warm.log"
diff -u "$WORK/expected.txt" "$WORK/got2.txt" \
  || fail "warm run changed the results"
grep -q "cache hit" "$WORK/warm.log" || fail "second job should hit the cache"

# 3. Fault-plan job: forcing B1 at 5:ra makes step-5 rb a conflict (exit 3),
#    and the faulted wire output must still match faulted ctrtl_design.
"$DESIGN" "$FIG1" --simulate --fault-plan="$PLAN" \
  | grep -E '^(  |final register values:)' > "$WORK/expected_fault.txt" || true
set +e
"$SERVE" submit --socket="$SOCK" --job=faulted --fault-plan="$PLAN" "$FIG1" \
  > "$WORK/got_fault.txt" 2> "$WORK/fault.log"
STATUS=$?
set -e
[ "$STATUS" -eq 3 ] || fail "faulted job expected exit 3, got $STATUS"
diff -u "$WORK/expected_fault.txt" "$WORK/got_fault.txt" \
  || fail "faulted wire reports differ from ctrtl_design"

# 4. Generated corpus design: a ctrtl_gen fabric case through the wire.
if [ -x "${SERVE%ctrtl_serve}ctrtl_gen" ]; then
  GEN="${SERVE%ctrtl_serve}ctrtl_gen"
  "$GEN" --seed=11 --count=1 --profile=fabric --out-dir="$WORK/corpus" \
    > /dev/null
  CASE="$(ls "$WORK/corpus"/*.rtd | head -1)"
  "$DESIGN" "$CASE" --simulate \
    | grep -E '^(  |final register values:)' > "$WORK/expected_gen.txt"
  "$SERVE" submit --socket="$SOCK" --job=gen "$CASE" \
    > "$WORK/got_gen.txt" 2>/dev/null
  diff -u "$WORK/expected_gen.txt" "$WORK/got_gen.txt" \
    || fail "generated-design wire reports differ from ctrtl_design"
fi

# 5. Watchdog job: a tight delta-cycle bound must come back as a structured
#    per-instance watchdog report (exit 4), not a hung or dead server.
set +e
"$SERVE" submit --socket="$SOCK" --job=wd --max-delta-cycles=10 "$FIG1" \
  > /dev/null 2> "$WORK/wd.log"
STATUS=$?
set -e
[ "$STATUS" -eq 4 ] || fail "watchdog job expected exit 4, got $STATUS"
grep -q "watchdog" "$WORK/wd.log" || fail "watchdog diagnostic missing"
"$SERVE" ping --socket="$SOCK" > /dev/null || fail "server died after watchdog"

# 6. Structured error reply: garbage design text must yield E-PARSE.
echo "this is not a design" > "$WORK/bad.rtd"
set +e
"$SERVE" submit --socket="$SOCK" --job=bad "$WORK/bad.rtd" \
  > /dev/null 2> "$WORK/bad.log"
STATUS=$?
set -e
[ "$STATUS" -eq 2 ] || fail "bad design expected exit 2, got $STATUS"
grep -q "E-PARSE" "$WORK/bad.log" || fail "expected E-PARSE error code"

# 7. Stats plumbing: hits/misses observed above must show up. Two hits:
#    the warm job, plus the watchdog job (same canonical stream — engine
#    bounds are not part of the cache key).
"$SERVE" stats --socket="$SOCK" > "$WORK/stats.txt"
grep -q "^cache-hits 2$" "$WORK/stats.txt" || fail "expected 2 cache hits"
grep -Eq "^jobs-completed [0-9]+$" "$WORK/stats.txt" || fail "stats malformed"

# 8. Clean shutdown: SHUTDOWN frame stops the server; process exits 0.
"$SERVE" shutdown --socket="$SOCK" | grep -q "shutdown acknowledged" \
  || fail "shutdown not acknowledged"
wait "$SERVER_PID"
SERVER_STATUS=$?
SERVER_PID=""
[ "$SERVER_STATUS" -eq 0 ] || fail "server exited $SERVER_STATUS"
grep -q "ctrtl_serve: stopped" "$WORK/server.log" \
  || fail "server did not log clean stop"

echo "serve smoke: all checks passed"
